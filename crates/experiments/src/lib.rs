//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). They share command-line handling,
//! dataset preparation, the standard WYM configuration, and result output
//! (a Markdown table on stdout plus a JSON file under `results/`).
//!
//! Runtime control: the paper's full benchmark is hours of compute; by
//! default each dataset is label-stratified subsampled to `--cap` pairs
//! (default 800) and the scorer trains for 20 epochs. `--full` lifts the
//! cap and restores the paper's 40 epochs; `--quick` shrinks everything for
//! smoke runs.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;
use wym_core::{WymConfig, WymModel};
use wym_data::{magellan, split::paper_split, EmDataset, RecordPair, SplitIndices};
use wym_embed::EmbedderKind;
use wym_ml::ClassifierKind;
use wym_nn::TrainConfig;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Lift subsampling caps and use paper-scale training.
    pub full: bool,
    /// Smoke-run mode: tiny caps, few epochs, reduced pool.
    pub quick: bool,
    /// Per-dataset pair cap (ignored under `--full`).
    pub cap: usize,
    /// Global seed.
    pub seed: u64,
    /// Worker threads for fitting/inference (0 = all cores). Results are
    /// identical for every value; this only trades latency for footprint.
    pub threads: usize,
    /// Restrict to these dataset short names (default: all twelve).
    pub datasets: Option<Vec<String>>,
    /// Override the embedding dimensionality (`None` = the config default;
    /// pass 300 for the paper's fastText-scale vectors). `--quick` wins
    /// when both are given.
    pub dim: Option<usize>,
    /// Record spans and metrics; print the stderr summary at exit.
    pub trace: bool,
    /// Where to write the JSON metrics snapshot (`None` = only when
    /// tracing, at `results/OBS_<binary>.json`).
    pub metrics_out: Option<String>,
    /// Export folded-stack flamegraphs (`results/FLAME_<name>_*.folded`).
    /// Implies recording, and memory profiling for the alloc weights.
    pub flame: bool,
    /// Attribute allocator traffic to spans (needs the binary to install
    /// [`wym_obs::TrackingAlloc`], which all experiment binaries do).
    pub profile_mem: bool,
    /// Export the full-run flight-recorder contents as a Chrome
    /// trace-event JSON file at this path (loadable in `chrome://tracing`
    /// or Perfetto). Independent of `--trace`: the flight records even in
    /// untraced runs.
    pub chrome_trace: Option<String>,
    /// Hidden fault injection: panic when entering the named span. Smoke
    /// CI uses this to exercise the panic-hook dump path deterministically.
    pub inject_panic: Option<String>,
    /// Hidden fault injection: sleep `ms` when entering the named span
    /// (`--inject-stall SPAN,MS`) so the stall watchdog trips on demand.
    pub inject_stall: Option<(String, u64)>,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        Self {
            full: false,
            quick: false,
            cap: 800,
            seed: 7,
            threads: 0,
            datasets: None,
            dim: None,
            trace: false,
            metrics_out: None,
            flame: false,
            profile_mem: false,
            chrome_trace: None,
            inject_panic: None,
            inject_stall: None,
        }
    }
}

impl HarnessOpts {
    /// Parses `--full`, `--quick`, `--cap N`, `--seed N`, `--threads N`,
    /// `--dim N`, `--datasets A,B,…`, `--trace`, `--metrics-out FILE` from
    /// `std::env::args`. Enables obs recording when tracing is requested.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => opts.full = true,
                "--trace" => opts.trace = true,
                "--flame" => opts.flame = true,
                "--profile-mem" => opts.profile_mem = true,
                "--metrics-out" => {
                    i += 1;
                    opts.metrics_out =
                        Some(args.get(i).expect("--metrics-out needs a path").clone());
                }
                "--quick" => {
                    opts.quick = true;
                    opts.cap = 300;
                }
                "--cap" => {
                    i += 1;
                    opts.cap = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--cap needs a number"));
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a number"));
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--threads needs a number"));
                }
                "--datasets" => {
                    i += 1;
                    let list = args.get(i).expect("--datasets needs a comma-separated list");
                    opts.datasets =
                        Some(list.split(',').map(|s| s.trim().to_string()).collect());
                }
                "--dim" => {
                    i += 1;
                    opts.dim = Some(
                        args.get(i)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| panic!("--dim needs a number")),
                    );
                }
                "--chrome-trace" => {
                    i += 1;
                    opts.chrome_trace =
                        Some(args.get(i).expect("--chrome-trace needs a path").clone());
                }
                "--inject-panic" => {
                    i += 1;
                    opts.inject_panic =
                        Some(args.get(i).expect("--inject-panic needs a span name").clone());
                }
                "--inject-stall" => {
                    i += 1;
                    let spec = args.get(i).expect("--inject-stall needs SPAN,MS");
                    let (span, ms) = spec
                        .split_once(',')
                        .and_then(|(s, m)| m.trim().parse().ok().map(|ms| (s.to_string(), ms)))
                        .unwrap_or_else(|| panic!("--inject-stall needs SPAN,MS: {spec}"));
                    opts.inject_stall = Some((span, ms));
                }
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        wym_obs::register_stages(wym_core::pipeline::PIPELINE_STAGES);
        if opts.trace || opts.metrics_out.is_some() || opts.flame {
            wym_obs::set_enabled(true);
        }
        if opts.profile_mem || opts.flame {
            wym_obs::prof::set_enabled(true);
        }
        // The flight recorder is always on (WYM_FLIGHT=off opts out): the
        // black box exists precisely for the runs nobody thought to trace.
        wym_obs::flight_install(wym_obs::FlightOptions::default());
        if let Some(span) = &opts.inject_panic {
            wym_obs::ring::set_injection(wym_obs::ring::Injection::Panic(span.clone()));
            eprintln!("flight: fault injection armed: panic at span \"{span}\"");
        }
        if let Some((span, ms)) = &opts.inject_stall {
            wym_obs::ring::set_injection(wym_obs::ring::Injection::Stall(span.clone(), *ms));
            eprintln!("flight: fault injection armed: {ms} ms stall at span \"{span}\"");
        }
        opts
    }

    /// The run's provenance header: commit, effective config, dataset
    /// selection, dispatched kernel, threads, and seed, hashed into a
    /// [`wym_obs::Manifest`] that [`HarnessOpts::flush_obs`] attaches to
    /// every exported metrics file.
    pub fn manifest(&self, name: &str) -> wym_obs::Manifest {
        let config = format!(
            "full={} quick={} cap={} seed={} threads={} dim={}",
            self.full,
            self.quick,
            self.cap,
            self.seed,
            self.threads,
            self.dim.map_or_else(|| "default".to_string(), |d| d.to_string())
        );
        let datasets = match &self.datasets {
            Some(names) => names.join(","),
            None => "all".to_string(),
        };
        wym_obs::Manifest::new(name)
            .with_kernel(wym_linalg::kernels::active_name())
            .with_threads(self.threads)
            .with_seed(self.seed)
            .with_config_bytes(config.as_bytes())
            .with_dataset_bytes(format!("{datasets} cap={} seed={}", self.cap, self.seed).as_bytes())
    }

    /// Emits the recorded observability snapshot: stderr summary under
    /// `--trace`, JSON export (with the run [`wym_obs::Manifest`]) to
    /// `--metrics-out` (default `results/OBS_<name>.json` when tracing),
    /// and folded-stack flamegraphs under `--flame`. Call once at the end
    /// of an experiment binary; a no-op when no obs flag was given.
    pub fn flush_obs(&self, name: &str) {
        use wym_obs::Sink;
        // The chrome-trace export reads the flight recorder, not the
        // metrics recorder, so it works even for fully untraced runs.
        if let Some(path) = &self.chrome_trace {
            match wym_obs::flight_write_chrome(path) {
                Ok(n) => eprintln!("→ chrome trace ({n} events) saved to {path}"),
                Err(e) => eprintln!("warning: cannot write chrome trace: {e}"),
            }
        }
        if !self.trace && self.metrics_out.is_none() && !self.flame {
            return;
        }
        let snap = wym_obs::snapshot();
        if self.trace {
            let _ = wym_obs::StderrSink.emit(&snap);
        }
        let path = self
            .metrics_out
            .clone()
            .unwrap_or_else(|| format!("results/OBS_{name}.json"));
        let mut sink = wym_obs::JsonFileSink::new(&path).with_manifest(self.manifest(name));
        match sink.emit(&snap) {
            Ok(()) => eprintln!("→ metrics saved to {path}"),
            Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
        }
        if self.flame {
            write_flames(name, &snap);
        }
    }

    /// The twelve benchmark datasets (or the `--datasets` selection),
    /// generated and capped according to the options.
    pub fn datasets(&self) -> Vec<EmDataset> {
        magellan::all_configs()
            .iter()
            .filter(|c| {
                self.datasets
                    .as_ref()
                    .is_none_or(|names| names.iter().any(|n| n == c.name))
            })
            .map(|c| {
                let d = magellan::generate(c, self.seed);
                if self.full {
                    d
                } else {
                    d.subsample(self.cap, self.seed)
                }
            })
            .collect()
    }

    /// The standard WYM configuration for this run.
    pub fn wym_config(&self) -> WymConfig {
        let mut cfg = WymConfig::default().with_seed(self.seed);
        cfg.n_threads = self.threads;
        if self.quick {
            cfg.embed_dim = 32;
            cfg.embedder_kind = EmbedderKind::Static;
            cfg.scorer.train =
                TrainConfig { epochs: 8, batch_size: 128, lr: 2e-3, ..TrainConfig::default() };
            cfg.matcher.kinds = vec![
                ClassifierKind::LogisticRegression,
                ClassifierKind::GradientBoosting,
                ClassifierKind::RandomForest,
            ];
        } else if self.full {
            cfg.scorer.train =
                TrainConfig { epochs: 40, batch_size: 256, lr: 1e-3, ..TrainConfig::default() };
        } else {
            cfg.scorer.train =
                TrainConfig { epochs: 20, batch_size: 256, lr: 1.5e-3, ..TrainConfig::default() };
        }
        if let Some(d) = self.dim {
            if !self.quick {
                cfg.embed_dim = d;
            }
        }
        cfg
    }
}

/// Writes the folded-stack flamegraph files for one finished run:
/// `results/FLAME_<name>_wall.folded` always, plus
/// `results/FLAME_<name>_alloc.folded` when the snapshot carries memory
/// attribution. Both load directly into speedscope or
/// `inferno-flamegraph`.
pub fn write_flames(name: &str, snap: &wym_obs::Snapshot) {
    use wym_obs::flame::{write_folded, FlameWeight};
    let mut weights = vec![FlameWeight::WallNs];
    if snap.memory.is_some() || snap.spans.iter().any(|s| s.mem.is_some()) {
        weights.push(FlameWeight::AllocBytes);
    }
    for weight in weights {
        let path = format!("results/FLAME_{name}_{}.folded", weight.infix());
        match write_folded(&path, snap, weight) {
            Ok(lines) => eprintln!("→ flamegraph ({} stacks) saved to {path}", lines),
            Err(e) => eprintln!("warning: cannot write flamegraph to {path}: {e}"),
        }
    }
}

/// A fitted model with its split and test slice.
pub struct FittedRun {
    /// The dataset the model was fitted on.
    pub dataset: EmDataset,
    /// The 60-20-20 split used.
    pub split: SplitIndices,
    /// The fitted model.
    pub model: WymModel,
    /// The test pairs.
    pub test: Vec<RecordPair>,
    /// Wall-clock seconds spent in `WymModel::fit`.
    pub fit_seconds: f64,
    /// Per-stage breakdown of `fit_seconds`.
    pub fit_timings: wym_core::pipeline::FitTimings,
}

/// Fits WYM on one dataset with the paper's 60-20-20 split.
pub fn fit_wym(dataset: &EmDataset, config: WymConfig, seed: u64) -> FittedRun {
    let split = paper_split(dataset, seed);
    let start = Instant::now();
    let (model, fit_timings) = WymModel::fit_timed(dataset, &split, config);
    let fit_seconds = start.elapsed().as_secs_f64();
    let test = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    FittedRun { dataset: dataset.clone(), split, model, test, fit_seconds, fit_timings }
}

/// Prints a Markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Writes a JSON result file under `results/` (created on demand) and
/// reports the path.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    // Fault-injected runs (--inject-panic / --inject-stall) exist to drill
    // the flight recorder; their timings are poisoned by construction, so
    // they must never overwrite committed results artifacts.
    if wym_obs::ring::injection_armed() {
        eprintln!("→ fault injection armed; results/{name}.json not written");
        return;
    }
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n→ results saved to {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize results: {e}"),
    }
}

/// Rotation bounds for `results/BENCH_history.jsonl`: when the ledger
/// exceeds [`HISTORY_MAX_LINES`] lines or [`HISTORY_MAX_BYTES`] bytes
/// after an append, it is rewritten keeping the newest
/// [`HISTORY_KEEP_LINES`] lines.
pub const HISTORY_MAX_LINES: usize = 512;
/// See [`HISTORY_MAX_LINES`].
pub const HISTORY_KEEP_LINES: usize = 256;
/// See [`HISTORY_MAX_LINES`].
pub const HISTORY_MAX_BYTES: u64 = 8 * 1024 * 1024;

/// Appends benchmark rows to the cross-run ledger
/// `results/BENCH_history.jsonl` — one compact JSON object per line,
/// `{"source": <binary>, "row": <the row, provenance manifest included>}`.
/// Unlike the per-binary `BENCH_*.json` files (overwritten every run), the
/// ledger is append-only *between* rotations: once it exceeds
/// [`HISTORY_MAX_LINES`] lines (or [`HISTORY_MAX_BYTES`]), the oldest
/// lines are dropped down to [`HISTORY_KEEP_LINES`], so regressions stay
/// diagnosable against a deep-but-bounded history. Failures only warn:
/// history is telemetry, not a gate. Runs with a flight fault injection
/// armed are skipped entirely — an injected stall would poison the timing
/// ledger `bench_diff` reads its thresholds from.
pub fn append_bench_history(source: &str, rows: &[wym_obs::Json]) {
    use std::io::Write;
    if wym_obs::ring::injection_armed() {
        eprintln!("→ fault injection armed; BENCH history append skipped");
        return;
    }
    let dir = PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("BENCH_history.jsonl");
    let mut out = String::new();
    for row in rows {
        let line = wym_obs::Json::obj(vec![
            ("source", wym_obs::Json::str(source)),
            ("row", row.clone()),
        ]);
        out.push_str(&line.render());
        out.push('\n');
    }
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()));
    match appended {
        Ok(()) => println!("→ {} row(s) appended to {}", rows.len(), path.display()),
        Err(e) => eprintln!("warning: could not append to {}: {e}", path.display()),
    }
    if let Some(kept) = rotate_history(&path, HISTORY_MAX_LINES, HISTORY_MAX_BYTES, HISTORY_KEEP_LINES)
    {
        println!("→ ledger rotated: kept newest {kept} lines in {}", path.display());
    }
}

/// Size-bounded keep-last-N rotation: rewrites `path` with its newest
/// `keep` lines when it exceeds `max_lines` lines or `max_bytes` bytes.
/// Returns the kept line count when a rotation happened.
fn rotate_history(
    path: &std::path::Path,
    max_lines: usize,
    max_bytes: u64,
    keep: usize,
) -> Option<usize> {
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let text = std::fs::read_to_string(path).ok()?;
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() <= max_lines && bytes <= max_bytes {
        return None;
    }
    let tail = &lines[lines.len().saturating_sub(keep)..];
    let mut out = tail.join("\n");
    out.push('\n');
    match std::fs::write(path, out) {
        Ok(()) => Some(tail.len()),
        Err(e) => {
            eprintln!("warning: could not rotate {}: {e}", path.display());
            None
        }
    }
}

/// Formats an F1-like metric to three decimals.
pub fn fmt3(v: f32) -> String {
    format!("{v:.3}")
}

/// Ranks of each column value within a row (1 = best/highest), with ties
/// sharing the smaller rank — the convention of the paper's Table 3.
pub fn ranks_desc(values: &[f32]) -> Vec<usize> {
    values
        .iter()
        .map(|&v| 1 + values.iter().filter(|&&o| o > v + 1e-9).count())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_handle_ties_like_table3() {
        // Paper convention: 1.0, 1.0 both rank 1; next value ranks 3.
        let r = ranks_desc(&[0.9, 1.0, 1.0, 0.8]);
        assert_eq!(r, vec![3, 1, 1, 4]);
    }

    #[test]
    fn default_opts_cover_all_datasets() {
        let opts = HarnessOpts::default();
        let names: Vec<String> =
            opts.datasets().iter().map(|d| d.name.clone()).collect();
        assert_eq!(names.len(), 12);
        assert!(names.contains(&"S-DG".to_string()));
        for d in opts.datasets() {
            assert!(d.len() <= opts.cap);
        }
    }

    #[test]
    fn dataset_filter_applies() {
        let opts = HarnessOpts {
            datasets: Some(vec!["S-FZ".into(), "S-BR".into()]),
            ..Default::default()
        };
        let ds = opts.datasets();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn quick_config_is_small() {
        let opts = HarnessOpts { quick: true, cap: 300, ..Default::default() };
        let cfg = opts.wym_config();
        assert_eq!(cfg.embed_dim, 32);
        assert_eq!(cfg.matcher.kinds.len(), 3);
    }

    #[test]
    fn history_rotation_keeps_newest_lines() {
        let dir = std::env::temp_dir().join(format!("wym_hist_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_history.jsonl");
        let lines: Vec<String> = (0..20).map(|i| format!("{{\"run\":{i}}}")).collect();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        // Under both bounds: untouched.
        assert_eq!(rotate_history(&path, 32, u64::MAX, 8), None);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 20);

        // Over the line bound: newest 8 survive, oldest dropped.
        assert_eq!(rotate_history(&path, 16, u64::MAX, 8), Some(8));
        let text = std::fs::read_to_string(&path).unwrap();
        let kept: Vec<&str> = text.lines().collect();
        assert_eq!(kept.len(), 8);
        assert_eq!(kept[0], "{\"run\":12}");
        assert_eq!(kept[7], "{\"run\":19}");

        // Byte bound triggers independently of the line bound.
        assert_eq!(rotate_history(&path, 1024, 10, 2), Some(2));
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
