//! Table 5 — test F1 of every pool classifier on every dataset, with the
//! per-dataset and per-classifier means and standard deviations.
//!
//! The pipeline (embedder, unit discovery, relevance scorer, feature
//! engineering) is fitted once per dataset; each classifier then trains on
//! the same engineered features, exactly as WYM's pool does internally.

use serde::Serialize;
use wym_core::features::featurize;
use wym_experiments::{fit_wym, fmt3, print_table, save_json, HarnessOpts};
use wym_linalg::Matrix;
use wym_ml::{f1_score, ClassifierKind, StandardScaler};

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    f1: Vec<f32>,
    mean: f32,
    std: f32,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let kinds = ClassifierKind::ALL;
    let mut rows_json: Vec<Row> = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[table5] {}", dataset.name);
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let specs = run.model.matcher().specs().to_vec();

        // Engineered features for every split from the fitted pipeline.
        let build = |idx: &[usize]| {
            let mut x = Matrix::zeros(0, specs.len());
            let mut y = Vec::with_capacity(idx.len());
            for &i in idx {
                let proc = run.model.process(&run.dataset.pairs[i]);
                x.push_row(&featurize(&specs, &proc.units, &proc.relevances));
                y.push(u8::from(run.dataset.pairs[i].label));
            }
            (x, y)
        };
        let (x_train, y_train) = build(
            &run.split.train.iter().chain(&run.split.val).copied().collect::<Vec<_>>(),
        );
        let (x_test, y_test) = build(&run.split.test);
        let (scaler, xs_train) = StandardScaler::fit_transform(&x_train);
        let xs_test = scaler.transform(&x_test);

        let mut f1 = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let mut model = kind.build(opts.seed);
            model.fit(&xs_train, &y_train);
            f1.push(f1_score(&model.predict(&xs_test), &y_test));
        }
        let mean = f1.iter().sum::<f32>() / f1.len() as f32;
        let std = (f1.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / f1.len() as f32).sqrt();
        let best = f1.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        rows.push(
            std::iter::once(dataset.name.clone())
                .chain(f1.iter().map(|&v| {
                    if (v - best).abs() < 1e-6 {
                        format!("**{}**", fmt3(v))
                    } else {
                        fmt3(v)
                    }
                }))
                .chain([fmt3(mean), format!("{std:.3}")])
                .collect(),
        );
        rows_json.push(Row { dataset: dataset.name.clone(), f1, mean, std });
    }

    // Per-classifier average and SD rows.
    if !rows_json.is_empty() {
        let n = rows_json.len() as f32;
        let mut avg = vec!["Avg.".to_string()];
        let mut sd = vec!["S.D.".to_string()];
        for k in 0..kinds.len() {
            let m = rows_json.iter().map(|r| r.f1[k]).sum::<f32>() / n;
            let s =
                (rows_json.iter().map(|r| (r.f1[k] - m).powi(2)).sum::<f32>() / n).sqrt();
            avg.push(fmt3(m));
            sd.push(format!("{s:.3}"));
        }
        avg.extend([String::new(), String::new()]);
        sd.extend([String::new(), String::new()]);
        rows.push(avg);
        rows.push(sd);
    }

    let mut headers = vec!["Dataset"];
    headers.extend(kinds.iter().map(|k| k.short_name()));
    headers.extend(["Avg.", "S.D."]);
    print_table("Table 5 — classifier pool (test F1; best per dataset in bold)", &headers, &rows);
    save_json("table5", &rows_json);
    opts.flush_obs("table5");
}
