//! Table 4 — component ablations: F1 when swapping the implementation of
//! each WYM component.
//!
//! Columns (matching the paper):
//! * **WYM** — siamese embeddings, neural scorer, full features;
//! * Decision Unit Generator: **j-w dist.** (Jaro–Winkler pairing),
//!   **BERT-pt** (static embeddings), **BERT-ft** (fine-tuned embeddings);
//! * Scorer: **bin. scr.** (1/0), **cos. sim.** (raw cosine),
//!   **bin j-w** (Jaro–Winkler pairing + binary scorer);
//! * Matcher: **smp. feat.** (the simplified 6-feature set).

use serde::Serialize;
use wym_core::pairing::PairingSim;
use wym_core::scorer::ScorerKind;
use wym_core::WymConfig;
use wym_embed::EmbedderKind;
use wym_experiments::{fit_wym, fmt3, print_table, ranks_desc, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

const VARIANTS: [&str; 8] =
    ["WYM", "j-w dist.", "BERT-pt", "BERT-ft", "bin. scr.", "cos. sim.", "bin j-w", "smp. feat."];

fn variant_config(base: WymConfig, name: &str) -> WymConfig {
    let mut cfg = base;
    // Jaro–Winkler similarities concentrate near 1; the pairing thresholds
    // shift accordingly.
    let jw = |cfg: &mut WymConfig| {
        cfg.discovery.sim = PairingSim::JaroWinkler;
        cfg.discovery.theta = 0.84;
        cfg.discovery.eta = 0.88;
        cfg.discovery.epsilon = 0.90;
    };
    match name {
        "WYM" => {}
        "j-w dist." => jw(&mut cfg),
        "BERT-pt" => cfg.embedder_kind = EmbedderKind::Static,
        "BERT-ft" => cfg.embedder_kind = EmbedderKind::FineTuned,
        "bin. scr." => cfg.scorer.kind = ScorerKind::Binary,
        "cos. sim." => cfg.scorer.kind = ScorerKind::CosineSim,
        "bin j-w" => {
            jw(&mut cfg);
            cfg.scorer.kind = ScorerKind::Binary;
        }
        "smp. feat." => cfg.matcher.simplified_features = true,
        other => panic!("unknown variant {other}"),
    }
    cfg
}

#[derive(Serialize)]
struct Row {
    dataset: String,
    variants: Vec<String>,
    f1: Vec<f32>,
    ranks: Vec<usize>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows_json: Vec<Row> = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[table4] {}", dataset.name);
        let mut f1 = Vec::with_capacity(VARIANTS.len());
        for name in VARIANTS {
            let cfg = variant_config(opts.wym_config(), name);
            let run = fit_wym(&dataset, cfg, opts.seed);
            f1.push(run.model.f1_on(&run.test));
        }
        let ranks = ranks_desc(&f1);
        rows.push(
            std::iter::once(dataset.name.clone())
                .chain(f1.iter().zip(&ranks).map(|(v, r)| format!("{} ({r})", fmt3(*v))))
                .collect(),
        );
        rows_json.push(Row {
            dataset: dataset.name.clone(),
            variants: VARIANTS.iter().map(|s| s.to_string()).collect(),
            f1,
            ranks,
        });
    }

    // AVG row.
    if !rows_json.is_empty() {
        let n = rows_json.len() as f32;
        let mut avg_row = vec!["AVG".to_string()];
        for k in 0..VARIANTS.len() {
            let mean_f1 = rows_json.iter().map(|r| r.f1[k]).sum::<f32>() / n;
            let mean_rank = rows_json.iter().map(|r| r.ranks[k] as f32).sum::<f32>() / n;
            avg_row.push(format!("{:.2} ({:.1})", mean_f1, mean_rank));
        }
        rows.push(avg_row);
    }

    let headers: Vec<&str> = std::iter::once("Dataset").chain(VARIANTS).collect();
    print_table("Table 4 — component ablations (F1, rank in parentheses)", &headers, &rows);
    save_json("table4", &rows_json);
    opts.flush_obs("table4");
}
