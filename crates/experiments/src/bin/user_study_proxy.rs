//! §5.4 proxy — automated readability comparison of decision-unit vs
//! feature-based explanations.
//!
//! The paper's 15-person study cannot run without human subjects; this
//! binary quantifies the property the raters preferred: decision-unit
//! explanations are smaller and collapse duplicated terms into single
//! scored elements. See DESIGN.md §2.

use serde::Serialize;
use wym_experiments::{fit_wym, print_table, save_json, HarnessOpts};
use wym_explain::readability::{mean_readability, readability};

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    mean_tokens: f32,
    mean_units: f32,
    compression_pct: f32,
    mean_duplicated_terms: f32,
    mean_deduplicated_by_units: f32,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[user-study-proxy] {}", dataset.name);
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let sample: Vec<_> = run.test.iter().take(100).cloned().collect();
        let (mean_tokens, mean_units, compression) = mean_readability(&run.model, &sample);
        let n = sample.len().max(1) as f32;
        let stats: Vec<_> = sample.iter().map(|p| readability(&run.model, p)).collect();
        let dup = stats.iter().map(|s| s.duplicated_terms as f32).sum::<f32>() / n;
        let dedup =
            stats.iter().map(|s| s.deduplicated_by_units as f32).sum::<f32>() / n;
        let row = Row {
            dataset: dataset.name.clone(),
            mean_tokens,
            mean_units,
            compression_pct: compression * 100.0,
            mean_duplicated_terms: dup,
            mean_deduplicated_by_units: dedup,
        };
        rows.push(vec![
            row.dataset.clone(),
            format!("{:.1}", row.mean_tokens),
            format!("{:.1}", row.mean_units),
            format!("{:.0}%", row.compression_pct),
            format!("{:.1}", row.mean_duplicated_terms),
            format!("{:.1}", row.mean_deduplicated_by_units),
        ]);
        rows_json.push(row);
    }
    print_table(
        "§5.4 proxy — explanation readability (decision units vs token features)",
        &[
            "Dataset",
            "tokens/expl",
            "units/expl",
            "size reduction",
            "duplicated terms",
            "deduplicated by units",
        ],
        &rows,
    );
    save_json("user_study_proxy", &rows_json);
    opts.flush_obs("user_study_proxy");
}
