//! Artifact round-trip gate: train → save → load → classify must be
//! bit-identical to the in-memory model.
//!
//! The binary fits WYM on the first selected dataset, records the in-memory
//! verdicts, probabilities, impact scores, and the deterministic relevance
//! `score_checksum` over the test slice, saves the model to a `.wyma`
//! artifact, reloads it under both [`LoadMode::Read`] and
//! [`LoadMode::Mmap`], and asserts that every recorded number reproduces
//! **to the bit**. Any mismatch is reported and the process exits nonzero,
//! which is how `run_experiments.sh --smoke` turns the save/load equality
//! contract into a gate.
//!
//! It also prints `artifact model fnv: <hex>` — an FNV-1a fold of the
//! payload checksums of every section except the provenance manifest (which
//! legitimately differs run to run). The smoke script compares this value
//! across `WYM_KERNEL=scalar` and `=auto` runs: equal folds mean the two
//! kernels trained and serialized bit-identical models. The fold covers the
//! `head` section, and the head embeds the full [`wym_core::WymConfig`] —
//! including the `n_threads` execution knob — so cross-run comparisons must
//! pin `--threads` (the tensor payloads themselves are thread-invariant;
//! `wym model diff` on two artifacts shows exactly which section moved).
//!
//! Results land in `results/BENCH_artifact.json`: save/load wall times,
//! artifact size, and the mmap-vs-read comparison, under the standard
//! provenance manifest.

use std::path::Path;
use std::time::Instant;
use wym_artifact::{self as artifact, LoadMode};
use wym_core::WymModel;
use wym_data::RecordPair;
use wym_experiments::{fit_wym, print_table, HarnessOpts};
use wym_obs::Json;

wym_obs::install_tracking_alloc!();

/// Everything the in-memory model says about one pair, bit-preserved.
struct Recorded {
    label: bool,
    probability_bits: u32,
    impact_bits: Vec<u32>,
}

/// Runs the model over the sample and records bit-exact outputs plus the
/// relevance checksum (same fold as the timing binary's smoke gate).
fn record(model: &WymModel, sample: &[RecordPair]) -> (Vec<Recorded>, f64) {
    let mut out = Vec::with_capacity(sample.len());
    let mut checksum = 0.0f64;
    for pair in sample {
        let processed = model.process(pair);
        checksum += processed.relevances.iter().map(|&v| v as f64).sum::<f64>();
        let ex = model.explain_processed(&processed);
        out.push(Recorded {
            label: ex.prediction,
            probability_bits: ex.probability.to_bits(),
            impact_bits: ex.units.iter().map(|u| u.impact.to_bits()).collect(),
        });
    }
    (out, checksum)
}

/// Compares a reloaded model's outputs against the in-memory record.
/// Returns the number of mismatching pairs (0 = bit-identical).
fn compare(tag: &str, baseline: &[Recorded], got: &[Recorded], checksums: (f64, f64)) -> usize {
    let mut bad = 0;
    for (i, (a, b)) in baseline.iter().zip(got).enumerate() {
        let ok = a.label == b.label
            && a.probability_bits == b.probability_bits
            && a.impact_bits == b.impact_bits;
        if !ok {
            if bad < 5 {
                eprintln!(
                    "[artifact_roundtrip] {tag}: pair {i} diverged \
                     (label {} vs {}, prob bits {:08x} vs {:08x})",
                    a.label, b.label, a.probability_bits, b.probability_bits
                );
            }
            bad += 1;
        }
    }
    if checksums.0.to_bits() != checksums.1.to_bits() {
        eprintln!(
            "[artifact_roundtrip] {tag}: score_checksum diverged ({} vs {})",
            checksums.0, checksums.1
        );
        bad += 1;
    }
    bad
}

fn main() {
    let opts = HarnessOpts::from_args();
    wym_obs::set_enabled(true);
    let dataset = opts
        .datasets()
        .into_iter()
        .next()
        .expect("at least one dataset selected");
    eprintln!("[artifact_roundtrip] {}", dataset.name);
    let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
    let sample = &run.test[..run.test.len().min(100)];

    let (baseline, base_checksum) = record(&run.model, sample);
    wym_obs::gauge_set("scorer.score_checksum", base_checksum);

    let _ = std::fs::create_dir_all("results");
    let path_s = format!("results/model_{}.wyma", dataset.name);
    let path = Path::new(&path_s);
    let manifest = opts.manifest("artifact_roundtrip");
    let t0 = Instant::now();
    let artifact_bytes = artifact::save_model(path, &run.model, &manifest)
        .unwrap_or_else(|e| panic!("saving {path_s}: {e}"));
    let save_s = t0.elapsed().as_secs_f64();

    // Reload twice — buffered read and memory-mapped — and demand that both
    // reproduce the in-memory outputs bit for bit.
    let mut failures = 0;
    let mut load_s = [0.0f64; 2];
    let mut mapped = [false; 2];
    for (i, mode) in [LoadMode::Read, LoadMode::Mmap].into_iter().enumerate() {
        let t0 = Instant::now();
        let loaded = artifact::load_model(path, mode)
            .unwrap_or_else(|e| panic!("loading {path_s} ({mode:?}): {e}"));
        load_s[i] = t0.elapsed().as_secs_f64();
        mapped[i] = loaded.mapped;
        let (got, checksum) = record(&loaded.model, sample);
        failures += compare(
            &format!("{mode:?}"),
            &baseline,
            &got,
            (base_checksum, checksum),
        );
    }

    // Model content fingerprint: fold the per-section payload checksums of
    // everything except the manifest (whose config hash differs per run).
    // Bit-identical models ⇒ identical folds, across kernels and threads.
    let info = artifact::inspect(path).expect("saved artifact must inspect");
    let fold = artifact::content_fnv(&info.sections);
    println!("artifact model fnv: {fold:016x}");

    print_table(
        "Artifact round-trip — save/load performance",
        &["Dataset", "pairs", "bytes", "save s", "load(read) s", "load(mmap) s", "mismatches"],
        &[vec![
            dataset.name.clone(),
            sample.len().to_string(),
            artifact_bytes.to_string(),
            format!("{save_s:.4}"),
            format!("{:.4}", load_s[0]),
            format!("{:.4}", load_s[1]),
            failures.to_string(),
        ]],
    );

    let bench = Json::obj(vec![
        ("manifest", manifest.to_json()),
        ("dataset", Json::str(&dataset.name)),
        ("kernel", Json::str(wym_linalg::kernels::active_name())),
        ("n_pairs", Json::UInt(sample.len() as u64)),
        ("artifact_bytes", Json::UInt(artifact_bytes)),
        ("save_s", Json::Num(save_s)),
        ("load_read_s", Json::Num(load_s[0])),
        ("load_mmap_s", Json::Num(load_s[1])),
        ("mmap_was_mapped", Json::Bool(mapped[1])),
        ("score_checksum", Json::Num(base_checksum)),
        ("model_fnv", Json::str(format!("{fold:016x}"))),
        ("mismatches", Json::UInt(failures as u64)),
    ]);
    let bench_path = "results/BENCH_artifact.json";
    match std::fs::write(bench_path, bench.pretty()) {
        Ok(()) => println!("\n→ results saved to {bench_path}"),
        Err(e) => eprintln!("warning: could not write {bench_path}: {e}"),
    }
    wym_experiments::append_bench_history("artifact_roundtrip", std::slice::from_ref(&bench));
    opts.flush_obs("artifact_roundtrip");

    if failures > 0 {
        eprintln!("[artifact_roundtrip] FAILED: {failures} divergence(s) after reload");
        std::process::exit(1);
    }
    println!("round-trip OK: saved→loaded model is bit-identical in-memory (read and mmap)");
}
