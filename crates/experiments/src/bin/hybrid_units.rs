//! Extension experiment (paper §6 future work): do decision units help a
//! DL-style EM system? Compares the DITTO proxy against the same proxy
//! extended with WYM unit-summary features.

use serde::Serialize;
use wym_baselines::{BaselineMatcher, Ditto, HybridUnits};
use wym_data::split::paper_split;
use wym_experiments::{fmt3, print_table, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    ditto: f32,
    hybrid: f32,
    delta_pct: f32,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[hybrid-units] {}", dataset.name);
        let split = paper_split(&dataset, opts.seed);
        let test: Vec<_> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let mut ditto = Ditto::new(opts.seed);
        ditto.fit(&dataset, &split);
        let mut hybrid = HybridUnits::new(opts.seed);
        hybrid.fit(&dataset, &split);
        let fd = ditto.f1_on(&test);
        let fh = hybrid.f1_on(&test);
        rows.push(vec![
            dataset.name.clone(),
            fmt3(fd),
            fmt3(fh),
            format!("{:+.1}", (fh - fd) * 100.0),
        ]);
        rows_json.push(Row {
            dataset: dataset.name.clone(),
            ditto: fd,
            hybrid: fh,
            delta_pct: (fh - fd) * 100.0,
        });
    }
    print_table(
        "Extension — decision units as features for a DL-style matcher",
        &["Dataset", "DITTO", "DITTO+units", "Δ (%)"],
        &rows,
    );
    save_json("hybrid_units", &rows_json);
    opts.flush_obs("hybrid_units");
}
