//! Figure 7 — sufficiency (post-hoc accuracy, Eq. 4): can the top-v units
//! alone reproduce the model's prediction?
//!
//! Four settings, as in the paper: WYM explained by its own impacts,
//! WYM explained by LIME, the DITTO proxy explained by LIME, and the DITTO
//! proxy explained by LEMON (single-token granularity).

use serde::Serialize;
use wym_baselines::{BaselineMatcher, Ditto};
use wym_experiments::{fit_wym, fmt3, print_table, save_json, HarnessOpts};
use wym_explain::sufficiency::{post_hoc_accuracy_tokens_multi, post_hoc_accuracy_wym_multi};
use wym_explain::{LemonLite, LimeText};

wym_obs::install_tracking_alloc!();

const VS: [usize; 5] = [1, 2, 3, 4, 5];

#[derive(Serialize)]
struct Row {
    dataset: String,
    setting: String,
    v: Vec<usize>,
    accuracy: Vec<f32>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    // Perturbation explainers call the model hundreds of times per record;
    // cap the explained sample.
    let n_records = if opts.full { 100 } else { 30 };
    let lime = LimeText { n_samples: if opts.full { 200 } else { 100 }, seed: opts.seed, ..LimeText::default() };
    let lemon = LemonLite {
        n_samples: if opts.full { 150 } else { 80 },
        seed: opts.seed,
        ..LemonLite::default()
    };

    let mut rows_json: Vec<Row> = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[figure7] {}", dataset.name);
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let sample: Vec<_> = run.test.iter().take(n_records).cloned().collect();

        let mut ditto = Ditto::new(opts.seed);
        ditto.fit(&dataset, &run.split);

        let mut push = |setting: &str, accuracy: Vec<f32>| {
            rows.push(
                std::iter::once(format!("{} / {}", dataset.name, setting))
                    .chain(accuracy.iter().map(|a| fmt3(*a)))
                    .collect::<Vec<_>>(),
            );
            rows_json.push(Row {
                dataset: dataset.name.clone(),
                setting: setting.to_string(),
                v: VS.to_vec(),
                accuracy,
            });
        };

        push("WYM+WYM", post_hoc_accuracy_wym_multi(&run.model, &sample, &VS));
        push(
            "WYM+LIME",
            post_hoc_accuracy_tokens_multi(&run.model, &sample, &VS, |p| {
                lime.explain(&run.model, p)
            }),
        );
        push(
            "DITTO+LIME",
            post_hoc_accuracy_tokens_multi(&ditto, &sample, &VS, |p| lime.explain(&ditto, p)),
        );
        push(
            "DITTO+LEMON",
            post_hoc_accuracy_tokens_multi(&ditto, &sample, &VS, |p| lemon.explain(&ditto, p)),
        );
    }
    print_table(
        "Figure 7 — post-hoc accuracy at top-v units/words",
        &["Dataset / setting", "v=1", "v=2", "v=3", "v=4", "v=5"],
        &rows,
    );
    save_json("figure7", &rows_json);
    opts.flush_obs("figure7");
}
