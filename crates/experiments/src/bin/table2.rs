//! Table 2 — the benchmark datasets: name, type, size, % match.
//!
//! Generates every dataset at full size (this binary ignores `--cap`; the
//! table's whole point is the official sizes) and reports the measured
//! statistics next to the paper's.

use serde::Serialize;
use wym_data::magellan;
use wym_experiments::{print_table, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    dataset_type: String,
    full_name: String,
    size: usize,
    match_pct: f32,
    paper_size: usize,
    paper_match_pct: f32,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for config in magellan::all_configs() {
        let dataset = magellan::generate(&config, opts.seed);
        let row = Row {
            dataset: config.name.to_string(),
            dataset_type: dataset.dataset_type.as_str().to_string(),
            full_name: config.full_name.to_string(),
            size: dataset.len(),
            match_pct: dataset.match_rate_pct(),
            paper_size: config.size,
            paper_match_pct: config.match_pct,
        };
        rows.push(vec![
            row.dataset.clone(),
            row.dataset_type.clone(),
            row.full_name.clone(),
            row.size.to_string(),
            format!("{:.2}", row.match_pct),
            row.paper_size.to_string(),
            format!("{:.2}", row.paper_match_pct),
        ]);
        rows_json.push(row);
    }
    print_table(
        "Table 2 — The Magellan Benchmark (synthetic regeneration)",
        &["Dataset", "Type", "Datasets", "Size", "% Match", "Paper size", "Paper % match"],
        &rows,
    );
    save_json("table2", &rows_json);
    opts.flush_obs("table2");
}
