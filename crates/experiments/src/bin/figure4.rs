//! Figure 4 — average distribution of paired/unpaired decision units per
//! dataset, split by match and non-match records.
//!
//! Expected shape (paper §5): non-matching records carry more units overall
//! and more unpaired than paired; T-AB stands out with a large number of
//! unpaired units caused by periphrasis.

use serde::Serialize;
use wym_core::{discover_units, DiscoveryConfig, TokenizedRecord};
use wym_embed::Embedder;
use wym_experiments::{print_table, save_json, HarnessOpts};
use wym_tokenize::Tokenizer;

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    match_paired: f32,
    match_unpaired: f32,
    non_match_paired: f32,
    non_match_unpaired: f32,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let tokenizer = Tokenizer::default();
    let discovery = DiscoveryConfig::default();
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        // Unit statistics need no training: a static embedder suffices and
        // keeps this binary fast even at --full.
        let embedder = Embedder::new_static(64, opts.seed);
        let mut sums = [[0.0f64; 2]; 2]; // [label][paired]
        let mut counts = [0usize; 2];
        for pair in &dataset.pairs {
            let rec = TokenizedRecord::from_pair(pair, &tokenizer, &embedder);
            let units = discover_units(&rec, &discovery);
            let label = usize::from(pair.label);
            counts[label] += 1;
            for u in &units {
                sums[label][usize::from(u.is_paired())] += 1.0;
            }
        }
        let avg = |label: usize, paired: usize| {
            if counts[label] == 0 {
                0.0
            } else {
                (sums[label][paired] / counts[label] as f64) as f32
            }
        };
        let row = Row {
            dataset: dataset.name.clone(),
            match_paired: avg(1, 1),
            match_unpaired: avg(1, 0),
            non_match_paired: avg(0, 1),
            non_match_unpaired: avg(0, 0),
        };
        rows.push(vec![
            row.dataset.clone(),
            format!("{:.1}", row.match_paired),
            format!("{:.1}", row.match_unpaired),
            format!("{:.1}", row.non_match_paired),
            format!("{:.1}", row.non_match_unpaired),
        ]);
        rows_json.push(row);
    }
    print_table(
        "Figure 4 — average decision units per record",
        &["Dataset", "match paired", "match unpaired", "non-match paired", "non-match unpaired"],
        &rows,
    );
    save_json("figure4", &rows_json);
    opts.flush_obs("figure4");
}
