//! Table 3 — effectiveness (F1) of WYM vs DM+, AutoML, CorDEL and DITTO
//! proxies on every benchmark dataset, with per-dataset ranks, Δ%
//! columns, and the AVG row.

use serde::Serialize;
use wym_baselines::{AutoMl, BaselineMatcher, CorDel, Ditto, DmPlus};
use wym_experiments::{fit_wym, fmt3, print_table, ranks_desc, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    wym: f32,
    dm_plus: f32,
    automl: f32,
    cordel: f32,
    ditto: f32,
    ranks: Vec<usize>,
    wym_classifier: String,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows_json: Vec<Row> = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[table3] {} ({} pairs)", dataset.name, dataset.len());
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let wym_f1 = run.model.f1_on(&run.test);

        let mut baselines: Vec<Box<dyn BaselineMatcher>> = vec![
            Box::new(DmPlus::new(opts.seed)),
            Box::new(AutoMl::new(opts.seed)),
            Box::new(CorDel::new(opts.seed)),
            Box::new(Ditto::new(opts.seed)),
        ];
        let mut scores = vec![wym_f1];
        for b in &mut baselines {
            b.fit(&dataset, &run.split);
            scores.push(b.f1_on(&run.test));
        }
        let ranks = ranks_desc(&scores);
        let delta = |i: usize| format!("{:+.1}", (scores[0] - scores[i]) * 100.0);
        rows.push(vec![
            dataset.name.clone(),
            format!("{} ({})", fmt3(scores[0]), ranks[0]),
            format!("{} ({})", fmt3(scores[1]), ranks[1]),
            format!("{} ({})", fmt3(scores[2]), ranks[2]),
            format!("{} ({})", fmt3(scores[3]), ranks[3]),
            format!("{} ({})", fmt3(scores[4]), ranks[4]),
            delta(1),
            delta(2),
            delta(3),
            delta(4),
        ]);
        rows_json.push(Row {
            dataset: dataset.name.clone(),
            wym: scores[0],
            dm_plus: scores[1],
            automl: scores[2],
            cordel: scores[3],
            ditto: scores[4],
            ranks,
            wym_classifier: format!("{:?}", run.model.classifier()),
        });
    }

    // AVG row (scores and mean rank, as in the paper).
    let n = rows_json.len().max(1) as f32;
    let avg = |f: fn(&Row) -> f32| rows_json.iter().map(f).sum::<f32>() / n;
    let avg_rank = |i: usize| {
        rows_json.iter().map(|r| r.ranks[i] as f32).sum::<f32>() / n
    };
    rows.push(vec![
        "AVG".into(),
        format!("{} ({:.1})", fmt3(avg(|r| r.wym)), avg_rank(0)),
        format!("{} ({:.1})", fmt3(avg(|r| r.dm_plus)), avg_rank(1)),
        format!("{} ({:.1})", fmt3(avg(|r| r.automl)), avg_rank(2)),
        format!("{} ({:.1})", fmt3(avg(|r| r.cordel)), avg_rank(3)),
        format!("{} ({:.1})", fmt3(avg(|r| r.ditto)), avg_rank(4)),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
    ]);

    print_table(
        "Table 3 — F1 vs comparator proxies (rank in parentheses)",
        &[
            "Dataset", "WYM", "DM+", "AutoML", "CorDEL", "DITTO", "ΔDM+ (%)", "ΔAutoML (%)",
            "ΔCorDEL (%)", "ΔDITTO (%)",
        ],
        &rows,
    );
    save_json("table3", &rows_json);
    opts.flush_obs("table3");
}
