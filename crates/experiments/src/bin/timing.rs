//! §5.3 — time performance: training and explanation throughput, plus the
//! pipeline breakdown.
//!
//! Paper's takeaways: training ≈ 9 records/s, explanation ≈ 20 records/s
//! (70k+ explanations/hour), with ~40% of the time spent on making the
//! explanations. Absolute numbers differ on CPU with our substrate; the
//! breakdown shape is the reproducible claim.

use serde::Serialize;
use std::time::Instant;
use wym_core::pairing::SimMatrix;
use wym_core::{discover_units, TokenizedRecord};
use wym_experiments::{fit_wym, print_table, save_json, HarnessOpts};
use wym_obs::{Json, Manifest, Snapshot};
use wym_tokenize::Tokenizer;

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    train_records_per_s: f64,
    explain_records_per_s: f64,
    tokenize_pct: f64,
    embed_pct: f64,
    discover_pct: f64,
    score_pct: f64,
    predict_pct: f64,
    impact_pct: f64,
}

/// Machine-readable per-stage wall-clock record (`results/BENCH_timing.json`)
/// so later perf work has a trajectory to compare against. Training-side
/// stages come from [`wym_core::pipeline::FitTimings`]; inference-side
/// stages are absolute seconds over the explained test slice.
///
/// The file is emitted through the `wym-obs` JSON sink: each row keeps all
/// of the keys below (old consumers keep working) and additionally carries
/// that dataset's recorded `spans` array and `metrics` object.
struct BenchRow {
    dataset: String,
    n_train: usize,
    n_explained: usize,
    /// Total `WymModel::fit` wall-clock.
    fit_s: f64,
    /// Embedder fitting inside `fit`.
    embed_fit_s: f64,
    /// Tokenize + embed + discovery inside `fit`.
    discover_fit_s: f64,
    /// Relevance-scorer training inside `fit`.
    score_train_s: f64,
    /// Unit scoring + classifier-pool fitting inside `fit`.
    pool_fit_s: f64,
    /// Per-record tokenization over the test slice (its own stage since the
    /// fused-embed PR; previously folded into `embed_s`).
    tokenize_s: f64,
    /// Per-record embedding (fused arena path) over the test slice.
    embed_s: f64,
    /// Per-record unit discovery over the test slice.
    discover_s: f64,
    /// Per-record relevance scoring over the test slice.
    score_s: f64,
    /// One batched `score_batch` call over the same records: the speedup
    /// against `score_s` is this PR's end-to-end batching evidence.
    score_batch_s: f64,
    /// Per-record match prediction over the test slice.
    predict_s: f64,
    /// Per-record impact computation over the test slice.
    impact_s: f64,
    /// One long-record stress SimMatrix build (the explained records'
    /// token vectors merged into a single record pair — the Customer-360
    /// long-description regime the screen targets), pure-f32 fill, best of
    /// the interleaved repetitions.
    simmatrix_f32_s: f64,
    /// The same stress build with the int8-screened fill: the ratio
    /// against `simmatrix_f32_s` is this PR's pairing-speedup evidence.
    /// In production the screen only engages in this regime
    /// (`worth_i8_screening`); small records keep the pure-f32 fill.
    simmatrix_i8_s: f64,
    /// Bytes allocated embedding the sample through the nested reference
    /// path (`embed_entity`), from the tracking allocator.
    embed_alloc_ref_bytes: u64,
    /// Bytes allocated embedding the same sample through the fused arena
    /// path with matrix recycling — steady-state serving behaviour. The
    /// ratio against `embed_alloc_ref_bytes` is the allocation-churn
    /// evidence.
    embed_alloc_fused_bytes: u64,
}

impl BenchRow {
    /// The row as JSON: the run's provenance `manifest` first, then the
    /// backward-compatible flat keys, then the dataset's observability
    /// snapshot as `spans` / `metrics` sections.
    fn to_json(&self, manifest: &Manifest, snap: &Snapshot) -> Json {
        let snap_json = snap.to_json();
        let mut spans = Json::Arr(Vec::new());
        let mut metrics = Vec::new();
        if let Json::Obj(sections) = snap_json {
            for (key, value) in sections {
                if key == "spans" {
                    spans = value;
                } else {
                    metrics.push((key, value));
                }
            }
        }
        Json::obj(vec![
            ("manifest", manifest.to_json()),
            ("dataset", Json::str(&self.dataset)),
            ("kernel", Json::str(wym_linalg::kernels::active_name())),
            ("n_train", Json::UInt(self.n_train as u64)),
            ("n_explained", Json::UInt(self.n_explained as u64)),
            ("fit_s", Json::Num(self.fit_s)),
            ("embed_fit_s", Json::Num(self.embed_fit_s)),
            ("discover_fit_s", Json::Num(self.discover_fit_s)),
            ("score_train_s", Json::Num(self.score_train_s)),
            ("pool_fit_s", Json::Num(self.pool_fit_s)),
            ("tokenize_s", Json::Num(self.tokenize_s)),
            ("embed_s", Json::Num(self.embed_s)),
            ("discover_s", Json::Num(self.discover_s)),
            ("score_s", Json::Num(self.score_s)),
            ("score_batch_s", Json::Num(self.score_batch_s)),
            ("predict_s", Json::Num(self.predict_s)),
            ("impact_s", Json::Num(self.impact_s)),
            ("simmatrix_f32_s", Json::Num(self.simmatrix_f32_s)),
            ("simmatrix_i8_s", Json::Num(self.simmatrix_i8_s)),
            ("embed_alloc_ref_bytes", Json::UInt(self.embed_alloc_ref_bytes)),
            ("embed_alloc_fused_bytes", Json::UInt(self.embed_alloc_fused_bytes)),
            ("spans", spans),
            ("metrics", Json::Obj(metrics)),
        ])
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    // The timing binary always records: its whole point is performance
    // telemetry, and the spans/metrics sections of BENCH_timing.json
    // should be populated without requiring --trace.
    wym_obs::set_enabled(true);
    let tokenizer = Tokenizer::default();
    let mut rows_json = Vec::new();
    let mut bench_json: Vec<Json> = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[timing] {}", dataset.name);
        // Per-dataset snapshot: clear metrics from the previous dataset
        // (the stage registry survives). Re-record which kernel
        // implementation this process dispatched to — the smoke gate greps
        // for a nonzero `kernel.dispatch.*` counter in the exported metrics.
        wym_obs::reset();
        wym_obs::counter_add(
            &format!("kernel.dispatch.{}", wym_linalg::kernels::active_name()),
            1,
        );
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let n_train = run.split.train.len() + run.split.val.len();
        let train_tp = n_train as f64 / run.fit_seconds.max(1e-9);

        // Explanation throughput and stage breakdown over the test slice.
        let sample = &run.test[..run.test.len().min(200)];
        let t0 = Instant::now();
        for pair in sample {
            let _ = run.model.explain(pair);
        }
        let explain_tp = sample.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);

        // Per-stage timings. The relevance scores are also folded into a
        // deterministic f64 checksum: `run_experiments.sh --smoke` runs this
        // binary under WYM_KERNEL=scalar and =auto and fails when the two
        // checksums differ, which pins the kernel layer's bit-identity
        // guarantee at the end-to-end level.
        let mut t_tokenize = 0.0f64;
        let mut t_embed = 0.0f64;
        let mut t_discover = 0.0;
        let mut t_score = 0.0;
        let mut t_predict = 0.0;
        let mut t_impact = 0.0;
        let mut score_checksum = 0.0f64;
        let mut processed = Vec::with_capacity(sample.len());
        for pair in sample {
            let s = Instant::now();
            let lt = tokenizer.tokenize_attributes(&pair.left.values);
            let rt = tokenizer.tokenize_attributes(&pair.right.values);
            t_tokenize += s.elapsed().as_secs_f64();
            let s = Instant::now();
            let rec = TokenizedRecord::from_tokens(
                pair.id,
                Some(pair.label),
                lt,
                rt,
                run.model.embedder(),
            );
            t_embed += s.elapsed().as_secs_f64();
            let s = Instant::now();
            let units = discover_units(&rec, &run.model.config().discovery);
            t_discover += s.elapsed().as_secs_f64();
            let s = Instant::now();
            let scores = run.model.scorer().score_units(&rec, &units);
            t_score += s.elapsed().as_secs_f64();
            let s = Instant::now();
            let _ = run.model.matcher().predict_proba(&units, &scores);
            t_predict += s.elapsed().as_secs_f64();
            let s = Instant::now();
            let _ = run.model.matcher().impacts(&units, &scores);
            t_impact += s.elapsed().as_secs_f64();
            score_checksum += scores.iter().map(|&v| v as f64).sum::<f64>();
            processed.push((rec, units));
        }
        wym_obs::gauge_set("scorer.score_checksum", score_checksum);

        // The same records scored again as one batch: a single feature
        // matrix and forward pass instead of `sample.len()` of them.
        let batch: Vec<_> = processed.iter().map(|(r, u)| (r, u.as_slice())).collect();
        let s = Instant::now();
        let _ = run.model.scorer().score_batch(&batch);
        let t_score_batch = s.elapsed().as_secs_f64();

        // Pairing-speedup evidence: one long-record stress pair built by
        // merging the explained records' token vectors (the Customer-360
        // long-description regime `worth_i8_screening` targets), timed with
        // the pure-f32 fill (`WYM_PAIRING=f32` behaviour) against the
        // int8-screened fill. The two variants are interleaved and the
        // minimum over the repetitions is reported so shared-host noise
        // cancels out of the ratio.
        let disc = &run.model.config().discovery;
        let floor = disc.theta.min(disc.eta).min(disc.epsilon);
        const SIM_STRESS_TOKENS: usize = 512;
        let stress_side = |pick: fn(&TokenizedRecord) -> &wym_core::record::EntityView| {
            let dim = processed
                .first()
                .map_or(0, |(rec, _)| pick(rec).embeds.dim());
            let mut rows: Vec<Vec<f32>> = Vec::with_capacity(SIM_STRESS_TOKENS);
            'fill: for (rec, _) in &processed {
                for row in pick(rec).embeds.rows() {
                    if rows.len() == SIM_STRESS_TOKENS {
                        break 'fill;
                    }
                    rows.push(row.to_vec());
                }
            }
            let tokens: Vec<String> = (0..rows.len()).map(|i| format!("t{i}")).collect();
            wym_core::record::EntityView {
                tokens: vec![tokens],
                embeds: wym_embed::EmbedMatrix::from_nested(&[rows], dim),
            }
        };
        let stress = TokenizedRecord {
            id: u32::MAX,
            left: stress_side(|rec| &rec.left),
            right: stress_side(|rec| &rec.right),
            label: None,
        };
        const SIM_REPS: usize = 11;
        let (mut t_sim_f32, mut t_sim_i8) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..SIM_REPS {
            let s = Instant::now();
            let _ = SimMatrix::build_tuned(&stress, disc.sim, false, None, 1);
            t_sim_f32 = t_sim_f32.min(s.elapsed().as_secs_f64());
            let s = Instant::now();
            let _ = SimMatrix::build_tuned(&stress, disc.sim, false, Some(floor), 1);
            t_sim_i8 = t_sim_i8.min(s.elapsed().as_secs_f64());
        }

        // Allocation-churn evidence: embed the sample's token lists through
        // the nested reference path and through the fused arena path (with
        // matrix recycling, i.e. steady-state serving), with the tracking
        // allocator attributing bytes to the two spans. Tokenization runs
        // outside both spans so only embedding allocations are compared.
        type AttrTokens = Vec<Vec<String>>;
        let token_lists: Vec<(AttrTokens, AttrTokens)> = sample
            .iter()
            .map(|pair| {
                (
                    tokenizer.tokenize_attributes(&pair.left.values),
                    tokenizer.tokenize_attributes(&pair.right.values),
                )
            })
            .collect();
        wym_obs::prof::set_enabled(true);
        {
            let _span = wym_obs::span("embed_ref");
            for (lt, rt) in &token_lists {
                let _ = run.model.embedder().embed_entity(lt);
                let _ = run.model.embedder().embed_entity(rt);
            }
        }
        {
            let _span = wym_obs::span("embed_fused");
            for (lt, rt) in &token_lists {
                wym_embed::recycle(run.model.embedder().embed_entity_fused(lt));
                wym_embed::recycle(run.model.embedder().embed_entity_fused(rt));
            }
        }
        wym_obs::prof::set_enabled(false);
        // Span memory is attributed to *self* costs, so the embedder's own
        // inner "embed" span holds most of the bytes: sum the whole subtree.
        let alloc_of = |path: &str| {
            let prefix = format!("{path}/");
            wym_obs::snapshot()
                .spans
                .iter()
                .filter(|s| s.path == path || s.path.starts_with(&prefix))
                .filter_map(|s| s.mem.as_ref().map(|m| m.alloc_bytes))
                .sum::<u64>()
        };
        let embed_alloc_ref_bytes = alloc_of("embed_ref");
        let embed_alloc_fused_bytes = alloc_of("embed_fused");

        let total =
            (t_tokenize + t_embed + t_discover + t_score + t_predict + t_impact).max(1e-9);
        let pct = |t: f64| 100.0 * t / total;
        let bench_row = BenchRow {
            dataset: dataset.name.clone(),
            n_train,
            n_explained: sample.len(),
            fit_s: run.fit_seconds,
            embed_fit_s: run.fit_timings.embed_fit_s,
            discover_fit_s: run.fit_timings.discover_s,
            score_train_s: run.fit_timings.score_train_s,
            pool_fit_s: run.fit_timings.pool_fit_s,
            tokenize_s: t_tokenize,
            embed_s: t_embed,
            discover_s: t_discover,
            score_s: t_score,
            score_batch_s: t_score_batch,
            predict_s: t_predict,
            impact_s: t_impact,
            simmatrix_f32_s: t_sim_f32,
            simmatrix_i8_s: t_sim_i8,
            embed_alloc_ref_bytes,
            embed_alloc_fused_bytes,
        };
        bench_json.push(bench_row.to_json(&opts.manifest("timing"), &wym_obs::snapshot()));
        let row = Row {
            dataset: dataset.name.clone(),
            train_records_per_s: train_tp,
            explain_records_per_s: explain_tp,
            tokenize_pct: pct(t_tokenize),
            embed_pct: pct(t_embed),
            discover_pct: pct(t_discover),
            score_pct: pct(t_score),
            predict_pct: pct(t_predict),
            impact_pct: pct(t_impact),
        };
        rows.push(vec![
            row.dataset.clone(),
            format!("{:.1}", row.train_records_per_s),
            format!("{:.1}", row.explain_records_per_s),
            format!("{:.0}%", row.tokenize_pct),
            format!("{:.0}%", row.embed_pct),
            format!("{:.0}%", row.discover_pct),
            format!("{:.0}%", row.score_pct),
            format!("{:.0}%", row.predict_pct),
            format!("{:.0}%", row.impact_pct),
        ]);
        rows_json.push(row);
    }
    print_table(
        "§5.3 — throughput and pipeline breakdown",
        &[
            "Dataset",
            "train rec/s",
            "explain rec/s",
            "tokenize",
            "embed",
            "discover",
            "score",
            "predict",
            "impacts",
        ],
        &rows,
    );
    save_json("timing", &rows_json);
    // BENCH_timing.json goes through the obs JSON writer so the per-dataset
    // spans/metrics sections share one serializer with OBS_*.json exports.
    let _ = std::fs::create_dir_all("results");
    let bench_path = "results/BENCH_timing.json";
    match std::fs::write(bench_path, Json::Arr(bench_json.clone()).pretty()) {
        Ok(()) => println!("\n→ results saved to {bench_path}"),
        Err(e) => eprintln!("warning: could not write {bench_path}: {e}"),
    }
    wym_experiments::append_bench_history("timing", &bench_json);
    opts.flush_obs("timing");
}
