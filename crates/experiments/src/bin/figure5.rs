//! Figure 5 — learning curves: F1 as the training set grows
//! (500, 1K, 2K, full), using pre-trained (static) embeddings as the paper
//! does for this experiment.
//!
//! The paper omits S-BR, S-IA, S-FZ and D-IA because their training sets
//! are smaller than the sweep; we do the same.

use serde::Serialize;
use wym_core::WymModel;
use wym_data::split::paper_split;
use wym_embed::EmbedderKind;
use wym_experiments::{fmt3, print_table, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

const SKIP: [&str; 4] = ["S-BR", "S-IA", "S-FZ", "D-IA"];

#[derive(Serialize)]
struct Row {
    dataset: String,
    sizes: Vec<usize>,
    f1: Vec<f32>,
}

fn main() {
    let mut opts = HarnessOpts::from_args();
    // The sweep needs at least 2K training records: keep ≥ 3400 pairs so the
    // 60% train split holds 2K (unless the caller already asked for more).
    if !opts.full && opts.cap < 3400 {
        opts.cap = 3400;
    }
    let sweep = [500usize, 1000, 2000, usize::MAX];

    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        if SKIP.contains(&dataset.name.as_str()) {
            continue;
        }
        eprintln!("[figure5] {}", dataset.name);
        let split = paper_split(&dataset, opts.seed);
        let test: Vec<_> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        let mut cfg = opts.wym_config();
        cfg.embedder_kind = EmbedderKind::Static; // per the paper's setup
        let mut sizes = Vec::new();
        let mut f1s = Vec::new();
        for &n in &sweep {
            let mut sub = split.clone();
            if n < sub.train.len() {
                // Deterministic stratified prefix: the split is shuffled
                // already, so a truncation is a stratified subsample.
                sub.train.truncate(n);
            }
            let model = WymModel::fit(&dataset, &sub, cfg.clone());
            sizes.push(sub.train.len());
            f1s.push(model.f1_on(&test));
        }
        rows.push(
            std::iter::once(dataset.name.clone())
                .chain(sizes.iter().zip(&f1s).map(|(n, f)| format!("{} @ {n}", fmt3(*f))))
                .collect(),
        );
        rows_json.push(Row { dataset: dataset.name.clone(), sizes, f1: f1s });
    }
    print_table(
        "Figure 5 — learning curves (F1 @ train size, static embeddings)",
        &["Dataset", "500", "1K", "2K", "full"],
        &rows,
    );
    save_json("figure5", &rows_json);
    opts.flush_obs("figure5");
}
