//! `obs_diff` — regression sentinel over two observability snapshots.
//!
//! ```text
//! obs_diff OLD.json NEW.json [options]
//!   --ignore-wall        skip wall-time comparisons (cross-machine baselines)
//!   --ignore-mem         skip memory comparisons
//!   --wall-rel F         allowed relative span-mean growth   (default 0.5)
//!   --wall-abs-ns N      absolute span-mean growth floor, ns (default 5e6)
//!   --counter-rel F      allowed relative counter drift      (default 0: exact)
//!   --mem-rel F          allowed relative allocation growth  (default 0.25)
//!   --drift-rel F        allowed relative obs.drift.* PSI gauge drift
//!                        (default 1e-6: PSI is deterministic)
//!   --ignore PREFIX      skip metrics with this name prefix (repeatable;
//!                        default: kernel.dispatch.)
//!   --verbose            show passing checks too, not only findings
//! ```
//!
//! Exit status: 0 when the candidate passes, 1 on any regression, 2 on
//! usage or file errors. Both version-1 (no manifest) and version-2 files
//! load; files from a *newer* schema than this binary understands are
//! refused. When both files carry manifests, provenance mismatches
//! (different commit, config, dataset selection, kernel, threads, or seed)
//! print as warnings — the diff still runs, but its verdict is only as
//! comparable as the runs were.

use std::process::ExitCode;
use wym_obs::diff::{diff, DiffConfig};
use wym_obs::manifest::SCHEMA_VERSION;
use wym_obs::{Manifest, Snapshot};

fn usage() -> &'static str {
    "usage: obs_diff OLD.json NEW.json [--ignore-wall] [--ignore-mem] \
     [--wall-rel F] [--wall-abs-ns N] [--counter-rel F] [--mem-rel F] \
     [--drift-rel F] [--ignore PREFIX]... [--verbose]"
}

struct Loaded {
    snap: Snapshot,
    manifest: Option<Manifest>,
}

fn load(path: &str) -> Result<Loaded, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = wym_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let version = Manifest::file_schema_version(&json);
    if version > SCHEMA_VERSION {
        return Err(format!(
            "{path}: schema version {version} is newer than this binary understands \
             ({SCHEMA_VERSION}); rebuild obs_diff"
        ));
    }
    let manifest = Manifest::from_file_json(&json);
    let snap = Snapshot::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    Ok(Loaded { snap, manifest })
}

/// Warns about provenance fields that differ between the two runs.
fn check_provenance(old: &Option<Manifest>, new: &Option<Manifest>) {
    let (Some(o), Some(n)) = (old, new) else {
        if old.is_none() || new.is_none() {
            eprintln!(
                "note: comparing against a version-1 file (no manifest); \
                 provenance cannot be checked"
            );
        }
        return;
    };
    let fields: &[(&str, &str, &str)] = &[
        ("git_sha", &o.git_sha, &n.git_sha),
        ("kernel", &o.kernel, &n.kernel),
        ("config_hash", &o.config_hash, &n.config_hash),
        ("dataset_fingerprint", &o.dataset_fingerprint, &n.dataset_fingerprint),
    ];
    for (name, ov, nv) in fields {
        if ov != nv {
            eprintln!("warning: {name} differs between runs ({ov} vs {nv})");
        }
    }
    if o.threads != n.threads {
        eprintln!("warning: threads differs between runs ({} vs {})", o.threads, n.threads);
    }
    if o.seed != n.seed {
        eprintln!("warning: seed differs between runs ({} vs {})", o.seed, n.seed);
    }
}

fn parse_args(args: &[String]) -> Result<(String, String, DiffConfig, bool), String> {
    let mut cfg = DiffConfig::default();
    let mut verbose = false;
    let mut paths = Vec::new();
    let mut i = 0;
    let num = |args: &[String], i: usize, flag: &str| -> Result<f64, String> {
        args.get(i)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs a number"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--ignore-wall" => cfg.ignore_wall = true,
            "--ignore-mem" => cfg.ignore_mem = true,
            "--verbose" => verbose = true,
            "--wall-rel" => {
                i += 1;
                cfg.span_wall_rel = num(args, i, "--wall-rel")?;
            }
            "--wall-abs-ns" => {
                i += 1;
                cfg.span_wall_abs_ns = num(args, i, "--wall-abs-ns")? as u64;
            }
            "--counter-rel" => {
                i += 1;
                cfg.counter_rel = num(args, i, "--counter-rel")?;
            }
            "--mem-rel" => {
                i += 1;
                cfg.mem_rel = num(args, i, "--mem-rel")?;
            }
            "--drift-rel" => {
                i += 1;
                cfg.drift_rel = num(args, i, "--drift-rel")?;
            }
            "--ignore" => {
                i += 1;
                cfg.ignore
                    .push(args.get(i).ok_or("--ignore needs a prefix")?.clone());
            }
            "--help" => return Err(usage().to_string()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    match <[String; 2]>::try_from(paths) {
        Ok([old, new]) => Ok((old, new, cfg, verbose)),
        Err(_) => Err(usage().to_string()),
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path, cfg, verbose) = parse_args(&args)?;
    let old = load(&old_path)?;
    let new = load(&new_path)?;
    check_provenance(&old.manifest, &new.manifest);
    let report = diff(&old.snap, &new.snap, &cfg);
    print!("{}", report.render_table(verbose));
    // Machine-greppable one-line verdict, mirroring the exit code.
    if report.passed() {
        println!("PASS: {new_path} within thresholds of {old_path}");
    } else {
        println!(
            "FAIL: {} regression(s) in {new_path} vs {old_path}",
            report.regressions().len()
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_paths_and_thresholds() {
        let (old, new, cfg, verbose) = parse_args(&s(&[
            "a.json",
            "--ignore-wall",
            "b.json",
            "--mem-rel",
            "0.5",
            "--ignore",
            "scorer.",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!((old.as_str(), new.as_str()), ("a.json", "b.json"));
        assert!(cfg.ignore_wall);
        assert!(verbose);
        assert_eq!(cfg.mem_rel, 0.5);
        assert!(cfg.ignore.iter().any(|p| p == "scorer."));
        assert!(cfg.ignore.iter().any(|p| p == "kernel.dispatch."));
        let (_, _, cfg, _) =
            parse_args(&s(&["a.json", "b.json", "--drift-rel", "0.25"])).unwrap();
        assert_eq!(cfg.drift_rel, 0.25);
    }

    #[test]
    fn rejects_wrong_arity_and_unknown_flags() {
        assert!(parse_args(&s(&["only.json"])).is_err());
        assert!(parse_args(&s(&["a.json", "b.json", "--bogus"])).is_err());
    }
}
