//! §5.1.1 error analysis: classify WYM's test errors and measure the
//! product-code confusion class, with and without the code heuristic.
//!
//! The paper: "WYM makes a large number of errors in recognizing product
//! codes … we verified an improvement of the F1 score in the T-AB dataset
//! (from 0.645 to 0.754) after the insertion of domain knowledge that
//! allows only equal product codes to belong to the same paired decision
//! units."

use serde::Serialize;
use wym_experiments::{fit_wym, fmt3, print_table, save_json, HarnessOpts};
use wym_explain::errors::analyze_errors;

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    f1_plain: f32,
    fp_plain: usize,
    fn_plain: usize,
    fp_code_confusion: usize,
    f1_with_heuristic: f32,
}

fn main() {
    let mut opts = HarnessOpts::from_args();
    if opts.datasets.is_none() {
        // The code-heavy datasets, where the paper locates this error class.
        opts.datasets = Some(vec!["S-AG".into(), "S-WA".into(), "T-AB".into(), "D-WA".into()]);
    }
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[error-analysis] {}", dataset.name);
        let plain = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let report = analyze_errors(&plain.model, &plain.test);
        let f1_plain = plain.model.f1_on(&plain.test);

        let mut cfg = opts.wym_config();
        cfg.discovery.code_heuristic = true;
        let guarded = fit_wym(&dataset, cfg, opts.seed);
        let f1_guarded = guarded.model.f1_on(&guarded.test);

        rows.push(vec![
            dataset.name.clone(),
            fmt3(f1_plain),
            report.false_positives.len().to_string(),
            report.false_negatives.len().to_string(),
            report.fp_with_code_confusion.to_string(),
            fmt3(f1_guarded),
        ]);
        rows_json.push(Row {
            dataset: dataset.name.clone(),
            f1_plain,
            fp_plain: report.false_positives.len(),
            fn_plain: report.false_negatives.len(),
            fp_code_confusion: report.fp_with_code_confusion,
            f1_with_heuristic: f1_guarded,
        });
    }
    print_table(
        "§5.1.1 — error analysis and the product-code heuristic",
        &["Dataset", "F1", "FPs", "FNs", "FPs w/ code confusion", "F1 + code heuristic"],
        &rows,
    );
    save_json("error_analysis", &rows_json);
    opts.flush_obs("error_analysis");
}
