//! Figure 9 — Pearson correlation between WYM impact scores and Landmark
//! Explanation scores, on a balanced record sample, split by gold label.
//!
//! Paper's finding: moderate positive correlation on matches (avg 0.577),
//! weaker on non-matches (avg 0.348).

use serde::Serialize;
use wym_data::RecordPair;
use wym_experiments::{fit_wym, print_table, save_json, HarnessOpts};
use wym_explain::correlation::correlations_by_label;
use wym_explain::Landmark;
use wym_linalg::stats::quantile;

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    match_mean: f32,
    match_q25: f32,
    match_q75: f32,
    non_match_mean: f32,
    non_match_q25: f32,
    non_match_q75: f32,
    n_match: usize,
    n_non_match: usize,
}

fn mean(v: &[f32]) -> f32 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f32>() / v.len() as f32
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    // Balanced sample (the paper uses 100 records; Landmark calls the model
    // ~100× per entity, so the default run uses a smaller sample).
    let per_class = if opts.full { 50 } else { 15 };
    let landmark = Landmark {
        n_perturbations: if opts.full { 100 } else { 50 },
        seed: opts.seed,
        ..Landmark::default()
    };

    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    let mut all_match = Vec::new();
    let mut all_non = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[figure9] {}", dataset.name);
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let matches: Vec<RecordPair> =
            run.test.iter().filter(|p| p.label).take(per_class).cloned().collect();
        let non: Vec<RecordPair> =
            run.test.iter().filter(|p| !p.label).take(per_class).cloned().collect();
        let sample: Vec<RecordPair> = matches.into_iter().chain(non).collect();
        let (m, n) =
            correlations_by_label(&run.model, &sample, |p| landmark.explain(&run.model, p));
        rows.push(vec![
            dataset.name.clone(),
            format!("{:.3}", mean(&m)),
            format!("[{:.2}, {:.2}]", quantile(&m, 0.25), quantile(&m, 0.75)),
            format!("{:.3}", mean(&n)),
            format!("[{:.2}, {:.2}]", quantile(&n, 0.25), quantile(&n, 0.75)),
        ]);
        rows_json.push(Row {
            dataset: dataset.name.clone(),
            match_mean: mean(&m),
            match_q25: quantile(&m, 0.25),
            match_q75: quantile(&m, 0.75),
            non_match_mean: mean(&n),
            non_match_q25: quantile(&n, 0.25),
            non_match_q75: quantile(&n, 0.75),
            n_match: m.len(),
            n_non_match: n.len(),
        });
        all_match.extend(m);
        all_non.extend(n);
    }
    rows.push(vec![
        "AVG".into(),
        format!("{:.3}", mean(&all_match)),
        String::new(),
        format!("{:.3}", mean(&all_non)),
        String::new(),
    ]);
    print_table(
        "Figure 9 — Pearson correlation WYM vs Landmark (paper AVG: match 0.577, non-match 0.348)",
        &["Dataset", "match mean", "match IQR", "non-match mean", "non-match IQR"],
        &rows,
    );
    save_json("figure9", &rows_json);
    opts.flush_obs("figure9");
}
