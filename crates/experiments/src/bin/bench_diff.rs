//! `bench_diff` — report-only regression sentinel over timing benchmarks.
//!
//! Compares the most recent `BENCH_timing.json` rows against the previous
//! run recorded in `BENCH_history.jsonl` (same source, same dataset) and
//! prints a per-stage table of relative wall-time changes. Unlike
//! `obs_diff` this tool never fails the build on a regression: timings are
//! machine- and load-dependent, so the table is evidence for a human, not
//! a gate. The smoke suite invokes it non-fatally after the timing runs.
//!
//! ```text
//! bench_diff [options]
//!   --current PATH   timing report to check    (default results/BENCH_timing.json)
//!   --history PATH   history log to scan       (default results/BENCH_history.jsonl)
//!   --source NAME    history source to match   (default "timing")
//!   --rel F          relative growth flagged as regression (default 0.3)
//! ```
//!
//! Exit status: 0 always when the comparison ran (even with regressions),
//! 2 on usage or file errors. Missing history is reported and exits 0 —
//! the first run of a fresh checkout has nothing to compare against.

use std::process::ExitCode;
use wym_obs::json::{self, Json};

/// Per-record pipeline stages compared between runs, in display order.
/// Keys absent from either row (older history entries predate newer
/// fields) are skipped silently.
const STAGE_KEYS: &[&str] = &[
    "fit_s",
    "embed_fit_s",
    "discover_fit_s",
    "score_train_s",
    "pool_fit_s",
    "tokenize_s",
    "embed_s",
    "discover_s",
    "score_s",
    "score_batch_s",
    "predict_s",
    "impact_s",
    "simmatrix_f32_s",
    "simmatrix_i8_s",
];

fn usage() -> &'static str {
    "usage: bench_diff [--current PATH] [--history PATH] [--source NAME] [--rel F]"
}

/// Looks up `key` in an object, returning `None` for non-objects.
fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric field as f64; `Int`/`UInt`/`Num` all qualify.
fn num_field(obj: &Json, key: &str) -> Option<f64> {
    match field(obj, key)? {
        Json::Num(f) => Some(*f),
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    match field(obj, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Loads the current timing report: a JSON array of per-dataset rows.
fn load_current(path: &str) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match json::parse(&text).map_err(|e| format!("{path}: {e}"))? {
        Json::Arr(rows) => Ok(rows),
        _ => Err(format!("{path}: expected a JSON array of timing rows")),
    }
}

/// Loads history rows matching `source`, oldest first. Lines that fail to
/// parse are skipped with a warning rather than aborting: the log is
/// append-only across versions and a single bad line should not disable
/// the sentinel.
fn load_history(path: &str, source: &str) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = match json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("warning: {path}:{}: skipping unparsable line: {e}", idx + 1);
                continue;
            }
        };
        if str_field(&entry, "source") != Some(source) {
            continue;
        }
        if let Some(row) = field(&entry, "row") {
            rows.push(row.clone());
        }
    }
    Ok(rows)
}

struct Options {
    current: String,
    history: String,
    source: String,
    rel: f64,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        current: "results/BENCH_timing.json".to_string(),
        history: "results/BENCH_history.jsonl".to_string(),
        source: "timing".to_string(),
        rel: 0.3,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--current" => opts.current = value("--current")?,
            "--history" => opts.history = value("--history")?,
            "--source" => opts.source = value("--source")?,
            "--rel" => {
                let raw = value("--rel")?;
                opts.rel = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--rel: not a number: {raw}"))?;
                if !opts.rel.is_finite() || opts.rel <= 0.0 {
                    return Err("--rel must be a positive number".to_string());
                }
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument: {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

/// Compares one current row against its previous history entry. Returns
/// the number of flagged regressions.
fn diff_row(dataset: &str, current: &Json, previous: &Json, rel: f64) -> usize {
    println!("dataset {dataset}:");
    println!("  {:<16} {:>12} {:>12} {:>9}", "stage", "previous_s", "current_s", "change");
    let mut regressions = 0;
    for key in STAGE_KEYS {
        let (Some(prev), Some(cur)) = (num_field(previous, key), num_field(current, key))
        else {
            continue;
        };
        // Sub-microsecond stages are noise-dominated; compare but never flag.
        let negligible = prev < 1e-6 && cur < 1e-6;
        let change = if prev > 0.0 { (cur - prev) / prev } else { f64::INFINITY };
        let flag = if !negligible && prev > 0.0 && change > rel {
            regressions += 1;
            "  REGRESSION"
        } else {
            ""
        };
        let shown = if prev > 0.0 { format!("{:+.1}%", change * 100.0) } else { "n/a".to_string() };
        println!("  {:<16} {:>12.6} {:>12.6} {:>9}{flag}", key, prev, cur, shown);
    }
    regressions
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let current = load_current(&opts.current)?;
    let history = load_history(&opts.history, &opts.source)?;

    let mut total_regressions = 0;
    let mut compared = 0;
    for row in &current {
        let dataset = str_field(row, "dataset").unwrap_or("?");
        // The timing binary appends its own run to the history log before
        // we get here, so "previous" is the second-to-last matching entry.
        let matches: Vec<&Json> = history
            .iter()
            .filter(|h| str_field(h, "dataset") == Some(dataset))
            .collect();
        if matches.len() < 2 {
            println!("dataset {dataset}: no prior history entry; nothing to compare");
            continue;
        }
        let previous = matches[matches.len() - 2];
        total_regressions += diff_row(dataset, row, previous, opts.rel);
        compared += 1;
    }

    if compared == 0 {
        println!("bench_diff: no datasets with prior history (first run?)");
    } else if total_regressions == 0 {
        println!(
            "bench_diff: OK — {compared} dataset(s), no stage slower than +{:.0}%",
            opts.rel * 100.0
        );
    } else {
        println!(
            "bench_diff: {total_regressions} stage(s) slower than +{:.0}% \
             (report-only; timings are machine-dependent)",
            opts.rel * 100.0
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            ExitCode::from(2)
        }
    }
}
