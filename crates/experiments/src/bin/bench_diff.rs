//! `bench_diff` — timing-regression sentinel with report, warn, and gate
//! modes.
//!
//! Compares the most recent `BENCH_timing.json` rows against the previous
//! run recorded in `BENCH_history.jsonl` (same source, same dataset) and
//! prints a per-stage table of relative wall-time changes. Because timings
//! are machine- and load-dependent, a fixed tolerance is always wrong on
//! some box — so each stage's tolerance is *learned from the ledger*:
//! twice the median run-to-run relative change observed across that
//! dataset's recent history, floored by `--rel`. A noisy stage earns a
//! wide band, a stable one a tight band.
//!
//! ```text
//! bench_diff [options]
//!   --current PATH   timing report to check    (default results/BENCH_timing.json)
//!   --history PATH   history log to scan       (default results/BENCH_history.jsonl)
//!   --source NAME    history source to match   (default "timing")
//!   --rel F          threshold floor           (default 0.3)
//!   --mode M         report | warn | gate      (default report)
//! ```
//!
//! Modes: `report` prints the table and always exits 0 (the historical
//! behaviour); `warn` additionally prints one prominent `WARNING` line per
//! flagged stage but still exits 0 — this is what `run_experiments.sh
//! --smoke` wires in; `gate` exits 1 when any stage regresses, for
//! machines stable enough to enforce. Usage and file errors exit 2.
//! Missing history is reported and exits 0 — the first run of a fresh
//! checkout has nothing to compare against.

use std::process::ExitCode;
use wym_obs::json::{self, Json};

/// Per-record pipeline stages compared between runs, in display order.
/// Keys absent from either row (older history entries predate newer
/// fields) are skipped silently.
const STAGE_KEYS: &[&str] = &[
    "fit_s",
    "embed_fit_s",
    "discover_fit_s",
    "score_train_s",
    "pool_fit_s",
    "tokenize_s",
    "embed_s",
    "discover_s",
    "score_s",
    "score_batch_s",
    "predict_s",
    "impact_s",
    "simmatrix_f32_s",
    "simmatrix_i8_s",
];

/// How many trailing history entries per dataset feed the learned
/// per-stage thresholds.
const THRESHOLD_WINDOW: usize = 8;

fn usage() -> &'static str {
    "usage: bench_diff [--current PATH] [--history PATH] [--source NAME] [--rel F] \
     [--mode report|warn|gate]"
}

/// Looks up `key` in an object, returning `None` for non-objects.
fn field<'a>(obj: &'a Json, key: &str) -> Option<&'a Json> {
    match obj {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Numeric field as f64; `Int`/`UInt`/`Num` all qualify.
fn num_field(obj: &Json, key: &str) -> Option<f64> {
    match field(obj, key)? {
        Json::Num(f) => Some(*f),
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Option<&'a str> {
    match field(obj, key)? {
        Json::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

/// Loads the current timing report: a JSON array of per-dataset rows.
fn load_current(path: &str) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match json::parse(&text).map_err(|e| format!("{path}: {e}"))? {
        Json::Arr(rows) => Ok(rows),
        _ => Err(format!("{path}: expected a JSON array of timing rows")),
    }
}

/// Loads history rows matching `source`, oldest first. Lines that fail to
/// parse are skipped with a warning rather than aborting: the log is
/// append-only across versions and a single bad line should not disable
/// the sentinel.
fn load_history(path: &str, source: &str) -> Result<Vec<Json>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = match json::parse(line) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("warning: {path}:{}: skipping unparsable line: {e}", idx + 1);
                continue;
            }
        };
        if str_field(&entry, "source") != Some(source) {
            continue;
        }
        if let Some(row) = field(&entry, "row") {
            rows.push(row.clone());
        }
    }
    Ok(rows)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Report,
    Warn,
    Gate,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Report => "report",
            Mode::Warn => "warn",
            Mode::Gate => "gate",
        }
    }
}

struct Options {
    current: String,
    history: String,
    source: String,
    rel: f64,
    mode: Mode,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        current: "results/BENCH_timing.json".to_string(),
        history: "results/BENCH_history.jsonl".to_string(),
        source: "timing".to_string(),
        rel: 0.3,
        mode: Mode::Report,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--current" => opts.current = value("--current")?,
            "--history" => opts.history = value("--history")?,
            "--source" => opts.source = value("--source")?,
            "--rel" => {
                let raw = value("--rel")?;
                opts.rel = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--rel: not a number: {raw}"))?;
                if !opts.rel.is_finite() || opts.rel <= 0.0 {
                    return Err("--rel must be a positive number".to_string());
                }
            }
            "--mode" => {
                opts.mode = match value("--mode")?.as_str() {
                    "report" => Mode::Report,
                    "warn" => Mode::Warn,
                    "gate" => Mode::Gate,
                    other => return Err(format!("--mode: unknown mode: {other}\n{}", usage())),
                };
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown argument: {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

/// The learned tolerance for one stage: twice the median run-to-run
/// relative |change| over the trailing history window, floored by `floor`.
/// Falls back to the floor when the ledger holds fewer than three usable
/// consecutive pairs — a young ledger has not earned a custom band yet.
fn ledger_threshold(series: &[f64], floor: f64) -> f64 {
    let mut spreads: Vec<f64> = series
        .windows(2)
        .filter(|w| w[0] > 0.0 && w[1] >= 0.0)
        .map(|w| ((w[1] - w[0]) / w[0]).abs())
        .filter(|r| r.is_finite())
        .collect();
    if spreads.len() < 3 {
        return floor;
    }
    spreads.sort_by(f64::total_cmp);
    (2.0 * spreads[spreads.len() / 2]).max(floor)
}

/// One flagged stage, for the warn/gate summaries.
struct Regression {
    dataset: String,
    stage: &'static str,
    change: f64,
    threshold: f64,
}

/// Compares one current row against its previous history entry, learning
/// per-stage thresholds from `prior` (the dataset's history, oldest first,
/// *excluding* the entry for the current run). Flags into `out`.
fn diff_row(dataset: &str, current: &Json, prior: &[&Json], floor: f64, out: &mut Vec<Regression>) {
    let previous = prior.last().expect("caller guarantees prior history");
    let window_start = prior.len().saturating_sub(THRESHOLD_WINDOW);
    println!("dataset {dataset}:");
    println!(
        "  {:<16} {:>12} {:>12} {:>9} {:>10}",
        "stage", "previous_s", "current_s", "change", "threshold"
    );
    for key in STAGE_KEYS {
        let (Some(prev), Some(cur)) = (num_field(previous, key), num_field(current, key))
        else {
            continue;
        };
        let series: Vec<f64> =
            prior[window_start..].iter().filter_map(|h| num_field(h, key)).collect();
        let threshold = ledger_threshold(&series, floor);
        // Sub-microsecond stages are noise-dominated; compare but never flag.
        let negligible = prev < 1e-6 && cur < 1e-6;
        let change = if prev > 0.0 { (cur - prev) / prev } else { f64::INFINITY };
        let flag = if !negligible && prev > 0.0 && change > threshold {
            out.push(Regression {
                dataset: dataset.to_string(),
                stage: key,
                change,
                threshold,
            });
            "  REGRESSION"
        } else {
            ""
        };
        let shown = if prev > 0.0 { format!("{:+.1}%", change * 100.0) } else { "n/a".to_string() };
        println!(
            "  {:<16} {:>12.6} {:>12.6} {:>9} {:>9.0}%{flag}",
            key,
            prev,
            cur,
            shown,
            threshold * 100.0
        );
    }
}

fn run() -> Result<bool, String> {
    let opts = parse_args()?;
    let current = load_current(&opts.current)?;
    let history = load_history(&opts.history, &opts.source)?;

    let mut regressions: Vec<Regression> = Vec::new();
    let mut compared = 0;
    for row in &current {
        let dataset = str_field(row, "dataset").unwrap_or("?");
        // The timing binary appends its own run to the history log before
        // we get here, so the current run is the last matching entry and
        // "previous" is the one before it.
        let matches: Vec<&Json> = history
            .iter()
            .filter(|h| str_field(h, "dataset") == Some(dataset))
            .collect();
        if matches.len() < 2 {
            println!("dataset {dataset}: no prior history entry; nothing to compare");
            continue;
        }
        let prior = &matches[..matches.len() - 1];
        diff_row(dataset, row, prior, opts.rel, &mut regressions);
        compared += 1;
    }

    if compared == 0 {
        println!("bench_diff: no datasets with prior history (first run?)");
    } else if regressions.is_empty() {
        println!(
            "bench_diff: OK — {compared} dataset(s), no stage over its ledger threshold \
             (floor +{:.0}%, mode {})",
            opts.rel * 100.0,
            opts.mode.label()
        );
    } else {
        if opts.mode != Mode::Report {
            for r in &regressions {
                println!(
                    "bench_diff WARNING: {} {} regressed {:+.1}% (threshold +{:.0}%)",
                    r.dataset,
                    r.stage,
                    r.change * 100.0,
                    r.threshold * 100.0
                );
            }
        }
        let consequence = match opts.mode {
            Mode::Report => "report-only; timings are machine-dependent",
            Mode::Warn => "warn mode: non-fatal, investigate before trusting timings",
            Mode::Gate => "gate mode: failing",
        };
        println!(
            "bench_diff: {} stage(s) over their ledger thresholds ({consequence})",
            regressions.len()
        );
    }
    Ok(opts.mode == Mode::Gate && !regressions.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::FAILURE,
        Ok(false) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            ExitCode::from(2)
        }
    }
}
