//! Million-record blocking at scale (ROADMAP item 2, DESIGN.md §11).
//!
//! Generates a synthetic deduplication table with exact gold pairings
//! (`wym_block::synth`), runs the two-pass blocker — sharded TF-IDF
//! inverted index plus int8-quantized ANN with exact f32 re-scoring — and
//! reports throughput and recall against a seeded gold subsample.
//!
//! The candidate set is bit-identical across `WYM_KERNEL=scalar|auto` and
//! any `--threads`; the `block.checksum` counter in the exported metrics is
//! the equality witness `run_experiments.sh --smoke` compares across kernel
//! runs and against the committed `results/OBS_baseline_blocking.json`.
//!
//! ```text
//! blocking_scale [--records N] [--smoke] [--threads N] [--seed N]
//!                [--subsample N] [--profile-mem] [--trace]
//!                [--metrics-out FILE]
//! ```

use std::time::Instant;
use wym_block::{BlockConfig, SynthConfig, BLOCK_STAGES};
use wym_obs::{Json, Manifest, Sink, Snapshot};

wym_obs::install_tracking_alloc!();

struct Opts {
    records: usize,
    smoke: bool,
    threads: usize,
    seed: u64,
    subsample: usize,
    profile_mem: bool,
    trace: bool,
    metrics_out: Option<String>,
}

impl Opts {
    fn from_args() -> Opts {
        let mut opts = Opts {
            records: 1_000_000,
            smoke: false,
            threads: 0,
            seed: 7,
            subsample: 10_000,
            profile_mem: false,
            trace: false,
            metrics_out: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        let num = |args: &[String], i: usize, flag: &str| -> usize {
            args.get(i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{flag} needs a number"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--smoke" => {
                    opts.smoke = true;
                    opts.records = 20_000;
                    opts.subsample = 2_000;
                }
                "--records" => {
                    i += 1;
                    opts.records = num(&args, i, "--records");
                }
                "--threads" => {
                    i += 1;
                    opts.threads = num(&args, i, "--threads");
                }
                "--seed" => {
                    i += 1;
                    opts.seed = num(&args, i, "--seed") as u64;
                }
                "--subsample" => {
                    i += 1;
                    opts.subsample = num(&args, i, "--subsample");
                }
                "--profile-mem" => opts.profile_mem = true,
                "--trace" => opts.trace = true,
                "--metrics-out" => {
                    i += 1;
                    opts.metrics_out =
                        Some(args.get(i).expect("--metrics-out needs a path").clone());
                }
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        opts
    }

    fn manifest(&self) -> Manifest {
        let config = format!(
            "records={} smoke={} seed={} threads={} subsample={}",
            self.records, self.smoke, self.seed, self.threads, self.subsample
        );
        Manifest::new("blocking_scale")
            .with_kernel(wym_linalg::kernels::active_name())
            .with_threads(self.threads)
            .with_seed(self.seed)
            .with_config_bytes(config.as_bytes())
            .with_dataset_bytes(format!("synth records={} seed={}", self.records, self.seed).as_bytes())
    }
}

/// Writes the quantized ANN table (plus the run's provenance manifest) as
/// a WYMA artifact.
fn save_ann_table(path: &str, table: &wym_embed::QuantizedTable, manifest: &Manifest) {
    let mut w = wym_artifact::ArtifactWriter::new();
    let manifest_json = Json::obj(vec![("manifest", manifest.to_json())]).pretty();
    w.add_json("manifest", manifest_json.as_bytes());
    wym_artifact::add_quantized(&mut w, "ann", table);
    if let Err(e) = w.write_to(std::path::Path::new(path)) {
        eprintln!("[blocking_scale] FAILED: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Reopens `path` and asserts the reloaded table matches `original` to the
/// bit — i8 codes byte-for-byte, f32 scales by `to_bits`. Exits nonzero on
/// any divergence: a table that silently re-quantizes on reload would
/// change candidate sets across restarts.
fn assert_ann_reloads_bit_identical(path: &str, original: &wym_embed::QuantizedTable) {
    let artifact =
        wym_artifact::Artifact::open(std::path::Path::new(path), wym_artifact::LoadMode::Read)
            .unwrap_or_else(|e| {
                eprintln!("[blocking_scale] FAILED: cannot reopen {path}: {e}");
                std::process::exit(1);
            });
    let reloaded = wym_artifact::read_quantized(&artifact, "ann").unwrap_or_else(|e| {
        eprintln!("[blocking_scale] FAILED: cannot read ann table from {path}: {e}");
        std::process::exit(1);
    });
    let (dim_a, codes_a, scales_a) = original.raw_parts();
    let (dim_b, codes_b, scales_b) = reloaded.raw_parts();
    let codes_match = dim_a == dim_b && codes_a == codes_b;
    let scales_match = scales_a.len() == scales_b.len()
        && scales_a.iter().zip(scales_b).all(|(a, b)| a.to_bits() == b.to_bits());
    if !codes_match || !scales_match {
        eprintln!(
            "[blocking_scale] FAILED: reloaded ann table diverges from the built one \
             (codes_match={codes_match} scales_match={scales_match})"
        );
        std::process::exit(1);
    }
}

/// Recall over a seeded subsample of the gold pairs: the exact pairing is
/// known from the generator, so this is ground-truth recall, not a proxy.
fn subsample_recall(pairs: &[(u32, u32)], gold: &[(u32, u32)], k: usize, seed: u64) -> (f64, usize) {
    if gold.is_empty() {
        return (1.0, 0);
    }
    let mut idx: Vec<usize> = (0..gold.len()).collect();
    let mut rng = wym_linalg::Rng64::new(seed ^ 0x5EED_CAB5);
    rng.shuffle(&mut idx);
    idx.truncate(k.min(gold.len()));
    let hit = idx.iter().filter(|&&g| pairs.binary_search(&gold[g]).is_ok()).count();
    (hit as f64 / idx.len() as f64, idx.len())
}

fn bench_row(
    opts: &Opts,
    n_pairs: usize,
    recall: f64,
    sampled: usize,
    synth_s: f64,
    block_s: f64,
    snap: &Snapshot,
) -> Json {
    let snap_json = snap.to_json();
    let mut spans = Json::Arr(Vec::new());
    let mut metrics = Vec::new();
    if let Json::Obj(sections) = snap_json {
        for (key, value) in sections {
            if key == "spans" {
                spans = value;
            } else {
                metrics.push((key, value));
            }
        }
    }
    Json::obj(vec![
        ("manifest", opts.manifest().to_json()),
        ("kernel", Json::str(wym_linalg::kernels::active_name())),
        ("n_records", Json::UInt(opts.records as u64)),
        ("n_candidate_pairs", Json::UInt(n_pairs as u64)),
        ("recall_subsample", Json::Num(recall)),
        ("subsample_size", Json::UInt(sampled as u64)),
        ("synth_s", Json::Num(synth_s)),
        ("block_s", Json::Num(block_s)),
        ("candidates_per_s", Json::Num(n_pairs as f64 / block_s.max(1e-9))),
        ("records_per_s", Json::Num(opts.records as f64 / block_s.max(1e-9))),
        ("peak_alloc_bytes", Json::Int(wym_obs::prof::peak_live_bytes())),
        ("spans", spans),
        ("metrics", Json::Obj(metrics)),
    ])
}

fn main() {
    let opts = Opts::from_args();
    wym_obs::set_enabled(true);
    // Flight recorder: post-mortem rings + stall watchdog for the long
    // index-build phases (dumps to results/FLIGHT_blocking_scale_*).
    wym_obs::flight_install(wym_obs::FlightOptions::default());
    wym_obs::register_stages(BLOCK_STAGES);
    if opts.profile_mem {
        wym_obs::prof::set_enabled(true);
    }
    wym_obs::counter_add(
        &format!("kernel.dispatch.{}", wym_linalg::kernels::active_name()),
        1,
    );

    let synth_config = SynthConfig { n_records: opts.records, seed: opts.seed, ..SynthConfig::default() };
    eprintln!("[blocking_scale] generating {} records (seed {})", opts.records, opts.seed);
    let t0 = Instant::now();
    let table = wym_block::generate(&synth_config);
    let synth_s = t0.elapsed().as_secs_f64();

    let block_config = BlockConfig { threads: opts.threads, ..BlockConfig::default() };
    eprintln!(
        "[blocking_scale] blocking ({} kernel, {} threads)",
        wym_linalg::kernels::active_name(),
        wym_par::resolve_threads(opts.threads),
    );
    let t0 = Instant::now();
    let (out, ann_index) = wym_block::block_entities_with_ann(&table.records, &block_config);
    let block_s = t0.elapsed().as_secs_f64();

    // Persist the quantized ANN table into a WYMA artifact and prove the
    // reload is bit-identical — the blocking layer's tables ride the same
    // container (and the same determinism contract) as model weights.
    if let Some(index) = &ann_index {
        let ann_path = if opts.smoke {
            "results/ann_tables_smoke.wyma"
        } else {
            "results/ann_tables.wyma"
        };
        let _ = std::fs::create_dir_all("results");
        save_ann_table(ann_path, index.quantized(), &opts.manifest());
        assert_ann_reloads_bit_identical(ann_path, index.quantized());
        println!("ann table saved to {ann_path} (reload verified bit-identical)");
    }

    let (recall, sampled) = subsample_recall(&out.pairs, &table.gold, opts.subsample, opts.seed);
    wym_obs::gauge_set("block.recall_subsample", recall);

    println!("\n## Blocking at scale — {} records\n", opts.records);
    println!("| metric | value |");
    println!("|---|---|");
    println!("| records | {} |", opts.records);
    println!("| gold pairs | {} |", table.gold.len());
    println!("| candidate pairs | {} |", out.pairs.len());
    println!("| lexical / ANN contributions | {} / {} |", out.lexical_pairs, out.ann_pairs);
    println!("| recall@{sampled} subsample | {recall:.4} |");
    println!("| synth wall | {synth_s:.2}s |");
    println!("| blocking wall | {block_s:.2}s |");
    println!("| records/s | {:.0} |", opts.records as f64 / block_s.max(1e-9));
    println!("| candidates/s | {:.0} |", out.pairs.len() as f64 / block_s.max(1e-9));
    println!("| candidate checksum | {:016x} |", out.checksum);

    let snap = wym_obs::snapshot();
    let row = bench_row(&opts, out.pairs.len(), recall, sampled, synth_s, block_s, &snap);
    let _ = std::fs::create_dir_all("results");
    // Smoke runs keep their row separate so the committed full-scale
    // BENCH_blocking.json row survives `run_experiments.sh --smoke`.
    let bench_path = if opts.smoke {
        "results/BENCH_blocking_smoke.json"
    } else {
        "results/BENCH_blocking.json"
    };
    match std::fs::write(bench_path, Json::Arr(vec![row.clone()]).pretty()) {
        Ok(()) => println!("\n→ results saved to {bench_path}"),
        Err(e) => eprintln!("warning: could not write {bench_path}: {e}"),
    }
    wym_experiments::append_bench_history("blocking_scale", std::slice::from_ref(&row));

    if opts.trace {
        let _ = wym_obs::StderrSink.emit(&snap);
    }
    if let Some(path) = &opts.metrics_out {
        let mut sink = wym_obs::JsonFileSink::new(path).with_manifest(opts.manifest());
        match sink.emit(&snap) {
            Ok(()) => eprintln!("→ metrics saved to {path}"),
            Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
        }
    }
}
