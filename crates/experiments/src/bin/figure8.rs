//! Figure 8 — F1 after removing the k most relevant (MoRF), least relevant
//! (LeRF) or random decision units from every test record.
//!
//! Expected shape: MoRF collapses the F1 (up to −60% in the paper), LeRF
//! barely moves it, Random sits in between.

use serde::Serialize;
use wym_experiments::{fit_wym, fmt3, print_table, save_json, HarnessOpts};
use wym_explain::perturb::removal_curves;

wym_obs::install_tracking_alloc!();

#[derive(Serialize)]
struct Row {
    dataset: String,
    strategy: String,
    k: Vec<usize>,
    f1: Vec<f32>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let k_max = 5usize;
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[figure8] {}", dataset.name);
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        // Perturbing re-runs the full pipeline per record per k: cap the slice.
        let sample: Vec<_> =
            run.test.iter().take(if opts.full { usize::MAX } else { 120 }).cloned().collect();
        for (strategy, curve) in removal_curves(&run.model, &sample, k_max, opts.seed) {
            rows.push(
                std::iter::once(format!("{} / {}", dataset.name, strategy.as_str()))
                    .chain(curve.iter().map(|v| fmt3(*v)))
                    .collect::<Vec<_>>(),
            );
            rows_json.push(Row {
                dataset: dataset.name.clone(),
                strategy: strategy.as_str().to_string(),
                k: (0..=k_max).collect(),
                f1: curve,
            });
        }
    }
    print_table(
        "Figure 8 — F1 after removing k units (MoRF / LeRF / Random)",
        &["Dataset / strategy", "k=0", "k=1", "k=2", "k=3", "k=4", "k=5"],
        &rows,
    );
    save_json("figure8", &rows_json);
    opts.flush_obs("figure8");
}
