//! Figure 6 — conciseness of the explanations: Pareto analysis of the
//! cumulative |impact| carried by the top fraction of decision units.
//!
//! Paper's claim: 3% of the units already carry 18-40% of the impact; 20%
//! carry 50-83%.

use serde::Serialize;
use wym_explain::pareto::mean_shares;
use wym_experiments::{fit_wym, print_table, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

const FRACTIONS: [f32; 6] = [0.03, 0.05, 0.10, 0.20, 0.50, 1.00];

#[derive(Serialize)]
struct Row {
    dataset: String,
    fractions: Vec<f32>,
    mean_share: Vec<f32>,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        eprintln!("[figure6] {}", dataset.name);
        let run = fit_wym(&dataset, opts.wym_config(), opts.seed);
        let explanations: Vec<_> =
            run.test.iter().map(|p| run.model.explain(p)).collect();
        let shares = mean_shares(&explanations, &FRACTIONS);
        rows.push(
            std::iter::once(dataset.name.clone())
                .chain(shares.iter().map(|s| format!("{:.0}%", s * 100.0)))
                .collect(),
        );
        rows_json.push(Row {
            dataset: dataset.name.clone(),
            fractions: FRACTIONS.to_vec(),
            mean_share: shares,
        });
    }
    print_table(
        "Figure 6 — cumulative impact share at top-k% of decision units",
        &["Dataset", "3%", "5%", "10%", "20%", "50%", "100%"],
        &rows,
    );
    save_json("figure6", &rows_json);
    opts.flush_obs("figure6");
}
