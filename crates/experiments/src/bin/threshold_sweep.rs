//! Extension experiment (not a paper table): sweep of the pairing
//! thresholds θ/η/ε around the paper's setting (0.6 / 0.65 / 0.7).
//!
//! DESIGN.md lists this as an ablation of a design choice the paper fixes
//! "experimentally": the claim that increasing thresholds across the three
//! search spaces beats uniform or decreasing ones.

use serde::Serialize;
use wym_experiments::{fit_wym, fmt3, print_table, save_json, HarnessOpts};

wym_obs::install_tracking_alloc!();

const SWEEPS: [(&str, f32, f32, f32); 5] = [
    ("paper (0.60/0.65/0.70)", 0.60, 0.65, 0.70),
    ("uniform low (0.50)", 0.50, 0.50, 0.50),
    ("uniform high (0.80)", 0.80, 0.80, 0.80),
    ("decreasing (0.70/0.65/0.60)", 0.70, 0.65, 0.60),
    ("strict (0.75/0.80/0.85)", 0.75, 0.80, 0.85),
];

#[derive(Serialize)]
struct Row {
    dataset: String,
    setting: String,
    theta: f32,
    eta: f32,
    epsilon: f32,
    f1: f32,
}

fn main() {
    let mut opts = HarnessOpts::from_args();
    // A sweep over two representative datasets (one clean, one dirty)
    // unless the caller selects others.
    if opts.datasets.is_none() {
        opts.datasets = Some(vec!["S-BR".into(), "D-WA".into()]);
    }
    let mut rows_json = Vec::new();
    let mut rows = Vec::new();
    for dataset in opts.datasets() {
        for (name, theta, eta, epsilon) in SWEEPS {
            eprintln!("[threshold-sweep] {} {}", dataset.name, name);
            let mut cfg = opts.wym_config();
            cfg.discovery.theta = theta;
            cfg.discovery.eta = eta;
            cfg.discovery.epsilon = epsilon;
            let run = fit_wym(&dataset, cfg, opts.seed);
            let f1 = run.model.f1_on(&run.test);
            rows.push(vec![dataset.name.clone(), name.to_string(), fmt3(f1)]);
            rows_json.push(Row {
                dataset: dataset.name.clone(),
                setting: name.to_string(),
                theta,
                eta,
                epsilon,
                f1,
            });
        }
    }
    print_table(
        "Threshold sweep — θ/η/ε vs F1",
        &["Dataset", "Setting", "F1"],
        &rows,
    );
    save_json("threshold_sweep", &rows_json);
    opts.flush_obs("threshold_sweep");
}
