//! Classifier-pool training and best-model selection.
//!
//! "WYM relies on a pool of ten interpretable classifiers … and the one
//! obtaining the best F1 score is selected" (§4.3). Features are
//! standardized once; each model trains on the scaled matrix, is scored on
//! the validation split, and the argmax-F1 model wins (ties break by the
//! paper's Table 5 column order).

use crate::metrics::f1_score;
use crate::scaler::StandardScaler;
use crate::serial::AnyClassifier;
use crate::{Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::Matrix;

/// The outcome of pool selection.
pub struct SelectedModel {
    /// The winning fitted model.
    pub model: Box<dyn Classifier>,
    /// Which pool member won.
    pub kind: ClassifierKind,
    /// Validation F1 of the winner.
    pub val_f1: f32,
    /// Validation F1 of every pool member, in [`ClassifierKind::ALL`] order.
    pub all_scores: Vec<(ClassifierKind, f32)>,
    /// The scaler fitted on the training features.
    pub scaler: StandardScaler,
}

impl SelectedModel {
    /// Probability of match for raw (unscaled) features.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        self.model.predict_proba(&self.scaler.transform(x))
    }

    /// Hard predictions for raw (unscaled) features.
    pub fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.model.predict(&self.scaler.transform(x))
    }

    /// Signed importances mapped back to the *raw* feature space by undoing
    /// the standardization (coefficient on scaled feature j corresponds to
    /// `coef_j / σ_j` on the raw feature).
    pub fn raw_signed_importance(&self) -> Vec<f32> {
        self.model
            .signed_importance()
            .iter()
            .zip(self.scaler.scales())
            .map(|(c, s)| c / s.max(1e-6))
            .collect()
    }
}

/// Serializable form of a [`SelectedModel`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedSelectedModel {
    /// Snapshot of the winning fitted model.
    pub model: AnyClassifier,
    /// Which pool member won.
    pub kind: ClassifierKind,
    /// Validation F1 of the winner.
    pub val_f1: f32,
    /// Validation F1 of every pool member.
    pub all_scores: Vec<(ClassifierKind, f32)>,
    /// The fitted scaler.
    pub scaler: StandardScaler,
}

impl SelectedModel {
    /// A serializable snapshot of the selection outcome.
    pub fn to_saved(&self) -> SavedSelectedModel {
        SavedSelectedModel {
            model: self.model.snapshot(),
            kind: self.kind,
            val_f1: self.val_f1,
            all_scores: self.all_scores.clone(),
            scaler: self.scaler.clone(),
        }
    }

    /// Rehydrates a snapshot.
    pub fn from_saved(saved: SavedSelectedModel) -> SelectedModel {
        SelectedModel {
            model: saved.model.into_boxed(),
            kind: saved.kind,
            val_f1: saved.val_f1,
            all_scores: saved.all_scores,
            scaler: saved.scaler,
        }
    }
}

/// Trains every pool member and selects the best by validation F1.
///
/// ```
/// use wym_ml::{ClassifierPool, ClassifierKind};
/// use wym_linalg::Matrix;
///
/// let x = Matrix::from_rows(&[&[-1.0], &[-2.0], &[1.0], &[2.0]]);
/// let y = vec![0, 0, 1, 1];
/// let pool = ClassifierPool {
///     kinds: vec![ClassifierKind::LogisticRegression, ClassifierKind::NaiveBayes],
///     ..ClassifierPool::default()
/// };
/// let selected = pool.fit_select(&x, &y, &x, &y);
/// assert_eq!(selected.predict(&x), y);
/// ```
pub struct ClassifierPool {
    /// Which kinds to include (defaults to all ten).
    pub kinds: Vec<ClassifierKind>,
    /// Model seed.
    pub seed: u64,
    /// Threads for member fitting (0 = all cores). Every member is seeded
    /// and scored independently, so the selection is identical for any
    /// value.
    pub n_threads: usize,
}

impl Default for ClassifierPool {
    fn default() -> Self {
        Self { kinds: ClassifierKind::ALL.to_vec(), seed: 0, n_threads: 0 }
    }
}

impl ClassifierPool {
    /// Fits all members on `(x_train, y_train)`, scores them on
    /// `(x_val, y_val)`, and returns the winner refitted on the union of
    /// train and validation data (the standard final-fit protocol).
    ///
    /// # Panics
    /// Panics if the training set is empty or widths mismatch.
    pub fn fit_select(
        &self,
        x_train: &Matrix,
        y_train: &[u8],
        x_val: &Matrix,
        y_val: &[u8],
    ) -> SelectedModel {
        assert!(!y_train.is_empty(), "empty training set");
        assert_eq!(x_train.cols(), x_val.cols(), "train / val width mismatch");
        let _span = wym_obs::span("pool_fit");
        let (scaler, xs_train) = StandardScaler::fit_transform(x_train);
        let xs_val = scaler.transform(x_val);

        // Members are independent (each gets its own freshly built model
        // with the shared seed), so fit them concurrently. map_indexed
        // returns scores in `kinds` order, and the strict `>` below keeps
        // the earliest kind on ties — identical selection to the old
        // sequential loop for every thread count.
        let scores = wym_par::map_indexed(&self.kinds, self.n_threads, |_, &kind| {
            // One span per pool member, named after the classifier, so a
            // trace shows which member dominates pool-fit wall clock.
            let _span = wym_obs::span(kind.short_name());
            let mut model = kind.build(self.seed);
            model.fit(&xs_train, y_train);
            if y_val.is_empty() {
                f1_score(&model.predict(&xs_train), y_train)
            } else {
                f1_score(&model.predict(&xs_val), y_val)
            }
        });
        let mut all_scores = Vec::with_capacity(self.kinds.len());
        let mut best: Option<(ClassifierKind, f32)> = None;
        for (&kind, f1) in self.kinds.iter().zip(scores) {
            all_scores.push((kind, f1));
            if best.is_none_or(|(_, b)| f1 > b) {
                best = Some((kind, f1));
            }
        }
        let (kind, val_f1) = best.expect("pool must be non-empty");

        // Final fit on train + validation with a scaler over the union.
        let mut x_all = x_train.clone();
        for row in x_val.iter_rows() {
            x_all.push_row(row);
        }
        let mut y_all = y_train.to_vec();
        y_all.extend_from_slice(y_val);
        let (scaler, xs_all) = StandardScaler::fit_transform(&x_all);
        let mut model = kind.build(self.seed);
        model.fit(&xs_all, &y_all);

        SelectedModel { model, kind, val_f1, all_scores, scaler }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, xor};

    #[test]
    fn selects_a_well_performing_model_on_blobs() {
        let (x, y) = blobs(60, 3, 81);
        let (xv, yv) = blobs(20, 3, 82);
        let selected = ClassifierPool::default().fit_select(&x, &y, &xv, &yv);
        assert!(selected.val_f1 > 0.95, "val F1 {}", selected.val_f1);
        assert_eq!(selected.all_scores.len(), 10);
        let (xt, yt) = blobs(20, 3, 83);
        let f1 = f1_score(&selected.predict(&xt), &yt);
        assert!(f1 > 0.9, "test F1 {f1}");
    }

    #[test]
    fn nonlinear_task_prefers_nonlinear_model() {
        let (x, y) = xor(500, 84);
        let (xv, yv) = xor(150, 85);
        let selected = ClassifierPool::default().fit_select(&x, &y, &xv, &yv);
        assert!(
            !matches!(
                selected.kind,
                ClassifierKind::LogisticRegression | ClassifierKind::Svm | ClassifierKind::Lda
            ),
            "XOR should not be won by a linear model, got {:?} (scores {:?})",
            selected.kind,
            selected.all_scores
        );
        assert!(selected.val_f1 > 0.8);
    }

    #[test]
    fn restricted_pool_only_trains_requested_kinds() {
        let (x, y) = blobs(30, 2, 86);
        let pool = ClassifierPool {
            kinds: vec![ClassifierKind::LogisticRegression, ClassifierKind::NaiveBayes],
            ..ClassifierPool::default()
        };
        let selected = pool.fit_select(&x, &y, &x, &y);
        assert_eq!(selected.all_scores.len(), 2);
        assert!(matches!(
            selected.kind,
            ClassifierKind::LogisticRegression | ClassifierKind::NaiveBayes
        ));
    }

    #[test]
    fn empty_validation_falls_back_to_train_f1() {
        let (x, y) = blobs(30, 2, 87);
        let empty_x = Matrix::zeros(0, 2);
        let selected = ClassifierPool::default().fit_select(&x, &y, &empty_x, &[]);
        assert!(selected.val_f1 > 0.9);
    }

    #[test]
    fn raw_importance_has_feature_width() {
        let (x, y) = blobs(30, 4, 88);
        let selected = ClassifierPool::default().fit_select(&x, &y, &x, &y);
        assert_eq!(selected.raw_signed_importance().len(), 4);
    }
}
