//! Feature standardization.
//!
//! The pool's linear members (LR, SVM, LDA) and KNN are scale-sensitive;
//! the matcher standardizes the engineered feature matrix once and feeds
//! every pool member the same scaled view, exactly like a scikit-learn
//! `Pipeline(StandardScaler(), model)` per classifier.

use serde::{Deserialize, Serialize};
use wym_linalg::Matrix;

/// Per-column standardizer `x ↦ (x − μ) / σ` (σ floored at 1e-6 so constant
/// columns map to 0 instead of NaN).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Learns column means and standard deviations from `x`.
    pub fn fit(x: &Matrix) -> Self {
        let mean = x.col_mean();
        let std = x.col_std().into_iter().map(|s| s.max(1e-6)).collect();
        Self { mean, std }
    }

    /// Applies the learned transform.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.mean.len(), "scaler width mismatch");
        let mut out = x.clone();
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
        out
    }

    /// Fit followed by transform.
    pub fn fit_transform(x: &Matrix) -> (Self, Matrix) {
        let scaler = Self::fit(x);
        let scaled = scaler.transform(x);
        (scaler, scaled)
    }

    /// The learned per-column scale factors (σ), needed to map model
    /// coefficients back to the original feature space.
    pub fn scales(&self) -> &[f32] {
        &self.std
    }

    /// The learned per-column means.
    pub fn means(&self) -> &[f32] {
        &self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_to_zero_mean_unit_std() {
        let x = Matrix::from_rows(&[&[1.0, 100.0], &[3.0, 300.0], &[5.0, 500.0]]);
        let (_, scaled) = StandardScaler::fit_transform(&x);
        let mean = scaled.col_mean();
        let std = scaled.col_std();
        for m in mean {
            assert!(m.abs() < 1e-5);
        }
        for s in std {
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn constant_columns_map_to_zero() {
        let x = Matrix::from_rows(&[&[7.0], &[7.0], &[7.0]]);
        let (_, scaled) = StandardScaler::fit_transform(&x);
        assert!(scaled.as_slice().iter().all(|v| v.abs() < 1e-6));
        assert!(!scaled.has_non_finite());
    }

    #[test]
    fn transform_applies_train_statistics_to_new_data() {
        let train = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let scaler = StandardScaler::fit(&train);
        let test = Matrix::from_rows(&[&[5.0]]);
        let out = scaler.transform(&test);
        assert!(out[(0, 0)].abs() < 1e-6, "5 is the train mean, must map to 0");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let scaler = StandardScaler::fit(&Matrix::zeros(2, 3));
        let _ = scaler.transform(&Matrix::zeros(2, 4));
    }
}
