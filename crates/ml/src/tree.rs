//! CART-style binary trees.
//!
//! One builder serves three pool members: the plain decision tree (DT),
//! the bagged ensembles (RF / ET via `forest`), and the gradient-boosted
//! residual trees (GBM via `boost`). Targets are `f32`; with 0/1 labels the
//! variance criterion is exactly half the Gini impurity, so minimizing MSE
//! reproduces CART's classification splits while also supporting the
//! regression trees that boosting needs.

use crate::{apply_signs, label_correlations, Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::{Matrix, Rng64};

/// Hyper-parameters of a single tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Features examined per split (`None` = all).
    pub max_features: Option<usize>,
    /// Extra-trees mode: one uniformly random threshold per feature instead
    /// of an exhaustive scan.
    pub random_threshold: bool,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            random_threshold: false,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { value: f32 },
    Split { feature: usize, threshold: f32, left: u32, right: u32 },
}

/// A fitted regression tree (classification = regression on 0/1 labels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    importances: Vec<f32>,
    n_features: usize,
}

impl Tree {
    /// Fits a tree on the rows of `x` indexed by `idx` with targets `y`.
    pub fn fit(x: &Matrix, y: &[f32], idx: &[usize], params: &TreeParams, rng: &mut Rng64) -> Self {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
        let mut tree = Tree {
            nodes: Vec::new(),
            importances: vec![0.0; x.cols()],
            n_features: x.cols(),
        };
        let mut indices = idx.to_vec();
        let root_weight = indices.len() as f32;
        tree.build(x, y, &mut indices, 0, params, rng, root_weight);
        tree
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (0 for a single leaf).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + walk(nodes, *left as usize).max(walk(nodes, *right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Predicted value (mean target of the reached leaf).
    pub fn predict_one(&self, row: &[f32]) -> f32 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left as usize } else { *right as usize };
                }
            }
        }
    }

    /// Predictions for all rows.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.n_features, "tree fitted on different width");
        x.iter_rows().map(|r| self.predict_one(r)).collect()
    }

    /// Impurity-decrease feature importances (unnormalized).
    pub fn importances(&self) -> &[f32] {
        &self.importances
    }

    /// Recursively builds the subtree over `idx`, returning its node id.
    /// `root_n` is the root sample count, used to weight impurity decreases.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        x: &Matrix,
        y: &[f32],
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut Rng64,
        root_n: f32,
    ) -> u32 {
        let n = idx.len();
        let (mean, var) = mean_var(y, idx);
        let id = self.nodes.len() as u32;
        if depth >= params.max_depth
            || n < params.min_samples_split
            || var <= 1e-12
            || n < 2 * params.min_samples_leaf
        {
            self.nodes.push(Node::Leaf { value: mean });
            return id;
        }

        let split = self.find_best_split(x, y, idx, params, rng);
        let Some((feature, threshold, gain)) = split else {
            self.nodes.push(Node::Leaf { value: mean });
            return id;
        };

        // Partition idx in place.
        let mut lt = 0usize;
        for i in 0..n {
            if x[(idx[i], feature)] <= threshold {
                idx.swap(i, lt);
                lt += 1;
            }
        }
        if lt < params.min_samples_leaf || n - lt < params.min_samples_leaf {
            self.nodes.push(Node::Leaf { value: mean });
            return id;
        }

        self.importances[feature] += gain * n as f32 / root_n;
        // Reserve the split node, then build children.
        self.nodes.push(Node::Leaf { value: mean }); // placeholder
        let (left_idx, right_idx) = idx.split_at_mut(lt);
        let left = self.build(x, y, left_idx, depth + 1, params, rng, root_n);
        let right = self.build(x, y, right_idx, depth + 1, params, rng, root_n);
        self.nodes[id as usize] = Node::Split { feature, threshold, left, right };
        id
    }

    /// Finds the best `(feature, threshold, variance_gain)` or `None`.
    fn find_best_split(
        &self,
        x: &Matrix,
        y: &[f32],
        idx: &[usize],
        params: &TreeParams,
        rng: &mut Rng64,
    ) -> Option<(usize, f32, f32)> {
        let d = x.cols();
        let features: Vec<usize> = match params.max_features {
            Some(k) if k < d => rng.sample_indices(d, k),
            _ => (0..d).collect(),
        };
        let n = idx.len() as f32;
        let (_, parent_var) = mean_var(y, idx);

        let mut best: Option<(usize, f32, f32)> = None;
        // Scratch buffers reused per feature.
        let mut vals: Vec<(f32, f32)> = Vec::with_capacity(idx.len());
        for &f in &features {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (x[(i, f)], y[i])));
            if params.random_threshold {
                let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
                for &(v, _) in &vals {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
                if hi - lo <= 1e-12 {
                    continue;
                }
                let threshold = lo + rng.gen_f32() * (hi - lo);
                if let Some(gain) = split_gain(&vals, threshold, parent_var, n, params) {
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((f, threshold, gain));
                    }
                }
            } else {
                vals.sort_by(|a, b| a.0.total_cmp(&b.0));
                // Prefix scan over sorted values.
                let total_sum: f64 = vals.iter().map(|&(_, t)| t as f64).sum();
                let total_sq: f64 = vals.iter().map(|&(_, t)| (t as f64) * (t as f64)).sum();
                let mut left_sum = 0.0f64;
                let mut left_sq = 0.0f64;
                for k in 0..vals.len() - 1 {
                    let (v, t) = vals[k];
                    left_sum += t as f64;
                    left_sq += (t as f64) * (t as f64);
                    let next_v = vals[k + 1].0;
                    if next_v <= v + 1e-12 {
                        continue; // no threshold between equal values
                    }
                    let nl = (k + 1) as f64;
                    let nr = n as f64 - nl;
                    if (nl as usize) < params.min_samples_leaf
                        || (nr as usize) < params.min_samples_leaf
                    {
                        continue;
                    }
                    let var_l = (left_sq - left_sum * left_sum / nl) / nl;
                    let right_sum = total_sum - left_sum;
                    let right_sq = total_sq - left_sq;
                    let var_r = (right_sq - right_sum * right_sum / nr) / nr;
                    let gain =
                        parent_var - ((nl * var_l + nr * var_r) / n as f64) as f32;
                    if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((f, 0.5 * (v + next_v), gain));
                    }
                }
            }
        }
        best
    }
}

/// Variance gain of splitting `vals` at `threshold`; `None` if a side is too small.
fn split_gain(
    vals: &[(f32, f32)],
    threshold: f32,
    parent_var: f32,
    n: f32,
    params: &TreeParams,
) -> Option<f32> {
    let (mut ls, mut lq, mut nl) = (0.0f64, 0.0f64, 0usize);
    let (mut rs, mut rq, mut nr) = (0.0f64, 0.0f64, 0usize);
    for &(v, t) in vals {
        let t = t as f64;
        if v <= threshold {
            ls += t;
            lq += t * t;
            nl += 1;
        } else {
            rs += t;
            rq += t * t;
            nr += 1;
        }
    }
    if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
        return None;
    }
    let var_l = (lq - ls * ls / nl as f64) / nl as f64;
    let var_r = (rq - rs * rs / nr as f64) / nr as f64;
    let gain = parent_var - ((nl as f64 * var_l + nr as f64 * var_r) / n as f64) as f32;
    (gain > 1e-12).then_some(gain)
}

/// Mean and population variance of `y` restricted to `idx`.
fn mean_var(y: &[f32], idx: &[usize]) -> (f32, f32) {
    let n = idx.len() as f64;
    let sum: f64 = idx.iter().map(|&i| y[i] as f64).sum();
    let mean = sum / n;
    let var: f64 = idx.iter().map(|&i| (y[i] as f64 - mean).powi(2)).sum::<f64>() / n;
    (mean as f32, var as f32)
}

/// The CART decision-tree pool member (DT in Table 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[derive(Default)]
pub struct DecisionTree {
    /// Tree hyper-parameters.
    pub params: TreeParams,
    tree: Option<Tree>,
    signs: Vec<f32>,
}


impl Classifier for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
        let idx: Vec<usize> = (0..y.len()).collect();
        // Deterministic: the exhaustive scan ignores the RNG.
        let mut rng = Rng64::new(0);
        self.tree = Some(Tree::fit(x, &yf, &idx, &self.params, &mut rng));
        self.signs = label_correlations(x, y);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let tree = self.tree.as_ref().expect("fit must be called before predict");
        tree.predict(x).into_iter().map(|v| v.clamp(0.0, 1.0)).collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::DecisionTree
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Dt(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        match &self.tree {
            Some(t) => apply_signs(t.importances(), &self.signs),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, single_feature, xor};

    #[test]
    fn perfectly_fits_axis_aligned_split() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[12.0]]);
        let y = vec![0, 0, 0, 1, 1, 1];
        let mut dt = DecisionTree::default();
        dt.fit(&x, &y);
        assert_eq!(dt.predict(&x), y);
        let t = dt.tree.as_ref().unwrap();
        assert_eq!(t.depth(), 1, "one split suffices");
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor(400, 51);
        let mut dt = DecisionTree::default();
        dt.fit(&x, &y);
        let acc = dt.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc as f32 / 400.0 > 0.95, "accuracy {acc}/400");
    }

    #[test]
    fn respects_max_depth() {
        let (x, y) = blobs(50, 3, 52);
        let mut dt = DecisionTree {
            params: TreeParams { max_depth: 2, ..TreeParams::default() },
            ..DecisionTree::default()
        };
        dt.fit(&x, &y);
        assert!(dt.tree.as_ref().unwrap().depth() <= 2);
    }

    #[test]
    fn min_samples_leaf_enforced() {
        let (x, y) = blobs(30, 2, 53);
        let params = TreeParams { min_samples_leaf: 10, ..TreeParams::default() };
        let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
        let idx: Vec<usize> = (0..y.len()).collect();
        let tree = Tree::fit(&x, &yf, &idx, &params, &mut Rng64::new(0));
        // Every leaf must hold ≥ 10 training rows: verify by counting
        // training rows routed to each leaf value bucket.
        let preds = tree.predict(&x);
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for p in preds {
            *counts.entry(p.to_bits()).or_insert(0) += 1;
        }
        for (_, c) in counts {
            assert!(c >= 10, "leaf with {c} samples");
        }
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        let (x, y) = single_feature(500, 4, 54);
        let mut dt = DecisionTree::default();
        dt.fit(&x, &y);
        let imp = dt.signed_importance();
        for j in 1..4 {
            assert!(imp[0] > imp[j].abs(), "{imp:?}");
        }
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = vec![1, 1, 1];
        let mut dt = DecisionTree::default();
        dt.fit(&x, &y);
        assert_eq!(dt.tree.as_ref().unwrap().node_count(), 1);
        assert_eq!(dt.predict(&x), y);
    }

    #[test]
    fn random_threshold_mode_still_learns() {
        let (x, y) = blobs(50, 3, 55);
        let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
        let idx: Vec<usize> = (0..y.len()).collect();
        let params = TreeParams { random_threshold: true, ..TreeParams::default() };
        let tree = Tree::fit(&x, &yf, &idx, &params, &mut Rng64::new(7));
        let preds = tree.predict(&x);
        let acc = preds
            .iter()
            .zip(&y)
            .filter(|(p, t)| (u8::from(**p >= 0.5)) == **t)
            .count();
        assert!(acc >= 95, "accuracy {acc}/100");
    }
}
