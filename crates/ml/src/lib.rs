//! Classical interpretable classifiers for the WYM explainable matcher.
//!
//! The paper's matcher "relies on a pool of ten interpretable classifiers
//! (Logistic Regression, Linear Discriminant Analysis, KNN, CART, Naive
//! Bayes, Support Vector Machine, AdaBoost, Gradient Boosting, Random
//! Forest, and Extra Tree), and the one obtaining the best F1 score is
//! selected" (§4.3). This crate implements all ten from scratch on top of
//! `wym-linalg`, plus the shared plumbing: a standard scaler, binary
//! classification metrics, and the pool-selection routine.
//!
//! Every model exposes [`Classifier::signed_importance`], a per-feature
//! signed weight (positive ⇒ pushes toward *match*) that the explainable
//! matcher inverts back onto decision units to obtain impact scores.

pub mod boost;
pub mod forest;
pub mod knn;
pub mod lda;
pub mod linear;
pub mod metrics;
pub mod nb;
pub mod scaler;
pub mod select;
pub mod serial;
pub mod tree;

pub use metrics::{f1_score, BinaryConfusion};
pub use scaler::StandardScaler;
pub use select::{ClassifierPool, SelectedModel};
pub use serial::AnyClassifier;

use wym_linalg::Matrix;

/// The ten members of the WYM classifier pool, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ClassifierKind {
    /// Logistic Regression (LR).
    LogisticRegression,
    /// Linear Discriminant Analysis (LDA).
    Lda,
    /// K-Nearest Neighbors (KNN).
    Knn,
    /// CART decision tree (DT in Table 5).
    DecisionTree,
    /// Gaussian Naive Bayes (NB).
    NaiveBayes,
    /// Linear Support Vector Machine (SVM).
    Svm,
    /// AdaBoost over decision stumps (AB).
    AdaBoost,
    /// Gradient Boosting Machine (GBM).
    GradientBoosting,
    /// Random Forest (RF).
    RandomForest,
    /// Extremely randomized trees (ET).
    ExtraTrees,
}

impl ClassifierKind {
    /// All ten kinds in the paper's Table 5 order.
    pub const ALL: [ClassifierKind; 10] = [
        ClassifierKind::LogisticRegression,
        ClassifierKind::Lda,
        ClassifierKind::Knn,
        ClassifierKind::DecisionTree,
        ClassifierKind::NaiveBayes,
        ClassifierKind::Svm,
        ClassifierKind::AdaBoost,
        ClassifierKind::GradientBoosting,
        ClassifierKind::RandomForest,
        ClassifierKind::ExtraTrees,
    ];

    /// The abbreviation used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            ClassifierKind::LogisticRegression => "LR",
            ClassifierKind::Lda => "LDA",
            ClassifierKind::Knn => "KNN",
            ClassifierKind::DecisionTree => "DT",
            ClassifierKind::NaiveBayes => "NB",
            ClassifierKind::Svm => "SVM",
            ClassifierKind::AdaBoost => "AB",
            ClassifierKind::GradientBoosting => "GBM",
            ClassifierKind::RandomForest => "RF",
            ClassifierKind::ExtraTrees => "ET",
        }
    }

    /// Instantiates a fresh, unfitted model of this kind.
    pub fn build(self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::LogisticRegression => {
                Box::new(linear::LogisticRegression::default())
            }
            ClassifierKind::Lda => Box::new(lda::LinearDiscriminantAnalysis::default()),
            ClassifierKind::Knn => Box::new(knn::KNearestNeighbors::default()),
            ClassifierKind::DecisionTree => Box::new(tree::DecisionTree::default()),
            ClassifierKind::NaiveBayes => Box::new(nb::GaussianNaiveBayes::default()),
            ClassifierKind::Svm => Box::new(linear::LinearSvm::default()),
            ClassifierKind::AdaBoost => Box::new(boost::AdaBoost::new(seed)),
            ClassifierKind::GradientBoosting => Box::new(boost::GradientBoosting::new(seed)),
            ClassifierKind::RandomForest => Box::new(forest::RandomForest::new(seed)),
            ClassifierKind::ExtraTrees => Box::new(forest::ExtraTrees::new(seed)),
        }
    }
}

/// A binary classifier over dense feature matrices.
///
/// Labels are `0` (non-match) and `1` (match). Implementations must be
/// deterministic given their construction seed.
pub trait Classifier: Send + Sync {
    /// Fits the model. Panics if `x.rows() != y.len()` or the set is empty.
    fn fit(&mut self, x: &Matrix, y: &[u8]);

    /// Probability of class 1 for each row.
    fn predict_proba(&self, x: &Matrix) -> Vec<f32>;

    /// Hard predictions at the 0.5 threshold.
    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.predict_proba(x).into_iter().map(|p| u8::from(p >= 0.5)).collect()
    }

    /// Which pool member this is.
    fn kind(&self) -> ClassifierKind;

    /// A serializable snapshot of the fitted model (see [`serial`]).
    fn snapshot(&self) -> serial::AnyClassifier;

    /// Per-feature signed global importance (positive ⇒ pushes toward match).
    ///
    /// Linear models return their coefficients; tree ensembles return
    /// impurity importances signed by the feature's point-biserial
    /// correlation with the label (recorded during `fit`); instance-based
    /// models (KNN, NB) return correlation-based attributions. All vectors
    /// have one entry per training feature.
    fn signed_importance(&self) -> Vec<f32>;
}

/// Signs an unsigned importance vector by the label-correlation signs
/// captured at fit time. Shared by tree ensembles, KNN and NB.
pub(crate) fn apply_signs(importance: &[f32], signs: &[f32]) -> Vec<f32> {
    importance.iter().zip(signs).map(|(m, s)| m * s.signum()).collect()
}

/// Point-biserial correlation of each feature with the binary label,
/// used as the sign source for models without native coefficients.
pub(crate) fn label_correlations(x: &Matrix, y: &[u8]) -> Vec<f32> {
    let n = x.rows();
    let mut out = vec![0.0f32; x.cols()];
    if n == 0 {
        return out;
    }
    let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
    for (j, o) in out.iter_mut().enumerate() {
        let col = x.col(j);
        *o = wym_linalg::stats::pearson(&col, &yf).unwrap_or(0.0);
    }
    out
}

#[cfg(test)]
pub(crate) mod test_data {
    use wym_linalg::{Matrix, Rng64};

    /// A linearly separable two-cluster task: class 1 near (+2,+2,…),
    /// class 0 near (−2,−2,…); any sane classifier reaches ≥95% accuracy.
    pub fn blobs(n_per_class: usize, dim: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, dim);
        let mut y = Vec::new();
        for class in [0u8, 1u8] {
            let center = if class == 1 { 2.0 } else { -2.0 };
            for _ in 0..n_per_class {
                let row: Vec<f32> =
                    (0..dim).map(|_| center + rng.normal() as f32 * 0.7).collect();
                x.push_row(&row);
                y.push(class);
            }
        }
        (x, y)
    }

    /// A task where only feature 0 matters; features 1.. are noise.
    pub fn single_feature(n: usize, dim: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, dim);
        let mut y = Vec::new();
        for _ in 0..n {
            let mut row: Vec<f32> = (0..dim).map(|_| rng.normal() as f32).collect();
            let label = u8::from(row[0] > 0.0);
            row[0] += if label == 1 { 1.0 } else { -1.0 };
            x.push_row(&row);
            y.push(label);
        }
        (x, y)
    }

    /// XOR of the first two features — requires a non-linear model.
    pub fn xor(n: usize, seed: u64) -> (Matrix, Vec<u8>) {
        let mut rng = Rng64::new(seed);
        let mut x = Matrix::zeros(0, 2);
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.normal() as f32;
            let b = rng.normal() as f32;
            x.push_row(&[a, b]);
            y.push(u8::from((a > 0.0) != (b > 0.0)));
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_data::blobs;

    #[test]
    fn all_ten_kinds_learn_separable_blobs() {
        let (x, y) = blobs(60, 4, 11);
        for kind in ClassifierKind::ALL {
            let mut model = kind.build(3);
            model.fit(&x, &y);
            let preds = model.predict(&x);
            let acc =
                preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f32 / y.len() as f32;
            assert!(acc >= 0.95, "{} accuracy {acc}", kind.short_name());
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = blobs(40, 3, 5);
        for kind in ClassifierKind::ALL {
            let mut model = kind.build(0);
            model.fit(&x, &y);
            for p in model.predict_proba(&x) {
                assert!((0.0..=1.0).contains(&p), "{}: p = {p}", kind.short_name());
            }
        }
    }

    #[test]
    fn signed_importance_length_matches_features() {
        let (x, y) = blobs(30, 5, 7);
        for kind in ClassifierKind::ALL {
            let mut model = kind.build(1);
            model.fit(&x, &y);
            assert_eq!(
                model.signed_importance().len(),
                5,
                "{} importance length",
                kind.short_name()
            );
        }
    }

    #[test]
    fn importance_positive_for_positively_correlated_feature() {
        // In blobs every feature is positively correlated with the label.
        let (x, y) = blobs(50, 3, 13);
        for kind in ClassifierKind::ALL {
            let mut model = kind.build(2);
            model.fit(&x, &y);
            let imp = model.signed_importance();
            let max = imp.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            assert!(max > 0.0, "{}: {imp:?}", kind.short_name());
        }
    }

    #[test]
    fn short_names_match_paper_tables() {
        let names: Vec<&str> = ClassifierKind::ALL.iter().map(|k| k.short_name()).collect();
        assert_eq!(names, vec!["LR", "LDA", "KNN", "DT", "NB", "SVM", "AB", "GBM", "RF", "ET"]);
    }
}
