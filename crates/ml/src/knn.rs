//! K-nearest-neighbors classifier (brute force).

use crate::{apply_signs, label_correlations, Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::vector::dist_sq;
use wym_linalg::Matrix;

/// Brute-force KNN with distance-weighted voting.
///
/// The training matrices in the WYM matcher have a few thousand rows and a
/// few hundred columns, where brute force beats tree indexes in practice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    /// Number of neighbors (scikit-learn's default of 5).
    pub k: usize,
    train_x: Matrix,
    train_y: Vec<u8>,
    signs: Vec<f32>,
}

impl Default for KNearestNeighbors {
    fn default() -> Self {
        Self { k: 5, train_x: Matrix::zeros(0, 0), train_y: Vec::new(), signs: Vec::new() }
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        self.train_x = x.clone();
        self.train_y = y.to_vec();
        self.signs = label_correlations(x, y);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.train_x.cols(), "model fitted on different width");
        let k = self.k.min(self.train_y.len()).max(1);
        let mut out = Vec::with_capacity(x.rows());
        // Reusable scratch of (distance², label).
        let mut dists: Vec<(f32, u8)> = Vec::with_capacity(self.train_y.len());
        for query in x.iter_rows() {
            dists.clear();
            for (row, &label) in self.train_x.iter_rows().zip(&self.train_y) {
                dists.push((dist_sq(query, row), label));
            }
            dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
            // Inverse-distance weighting; an exact duplicate dominates.
            let mut pos = 0.0f32;
            let mut total = 0.0f32;
            for &(d2, label) in &dists[..k] {
                let w = 1.0 / (d2.sqrt() + 1e-6);
                total += w;
                if label == 1 {
                    pos += w;
                }
            }
            out.push(if total > 0.0 { pos / total } else { 0.5 });
        }
        out
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::Knn
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Knn(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        // KNN has no parametric importance; expose the point-biserial
        // correlation profile recorded at fit time (unit magnitudes signed).
        apply_signs(&self.signs.iter().map(|s| s.abs()).collect::<Vec<_>>(), &self.signs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, xor};

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(40, 3, 31);
        let mut knn = KNearestNeighbors::default();
        knn.fit(&x, &y);
        let acc = knn.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 78, "accuracy {acc}/80");
    }

    #[test]
    fn handles_nonlinear_xor() {
        let (x, y) = xor(300, 32);
        let mut knn = KNearestNeighbors::default();
        knn.fit(&x, &y);
        let acc = knn.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc as f32 / 300.0 > 0.9, "accuracy {acc}/300");
    }

    #[test]
    fn exact_duplicate_dominates_vote() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0], &[5.1, 5.0], &[4.9, 5.0]]);
        let y = vec![1, 0, 0, 0];
        let mut knn = KNearestNeighbors { k: 4, ..KNearestNeighbors::default() };
        knn.fit(&x, &y);
        let p = knn.predict_proba(&Matrix::from_rows(&[&[0.0, 0.0]]));
        assert!(p[0] > 0.9, "duplicate of the positive point: {p:?}");
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors { k: 50, ..KNearestNeighbors::default() };
        knn.fit(&x, &y);
        let p = knn.predict_proba(&Matrix::from_rows(&[&[0.9]]));
        assert!(p[0] > 0.5);
    }
}
