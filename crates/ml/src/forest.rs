//! Bagged tree ensembles: Random Forest and Extra Trees.

use crate::tree::{Tree, TreeParams};
use crate::{apply_signs, label_correlations, Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::{Matrix, Rng64};

/// Shared ensemble configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Bootstrap-resample the training rows per tree.
    pub bootstrap: bool,
    /// Extra-trees style random thresholds.
    pub random_threshold: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Ensemble {
    trees: Vec<Tree>,
    signs: Vec<f32>,
    n_features: usize,
}

impl Ensemble {
    fn fit(x: &Matrix, y: &[u8], params: &ForestParams, seed: u64) -> Self {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let yf: Vec<f32> = y.iter().map(|&v| v as f32).collect();
        let n = y.len();
        let d = x.cols();
        let max_features = ((d as f32).sqrt().ceil() as usize).clamp(1, d);
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            min_samples_split: 2,
            min_samples_leaf: params.min_samples_leaf,
            max_features: Some(max_features),
            random_threshold: params.random_threshold,
        };
        let mut rng = Rng64::new(seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            let mut tree_rng = rng.fork(t as u64);
            let idx: Vec<usize> = if params.bootstrap {
                (0..n).map(|_| tree_rng.gen_range(n)).collect()
            } else {
                (0..n).collect()
            };
            trees.push(Tree::fit(x, &yf, &idx, &tree_params, &mut tree_rng));
        }
        Self { trees, signs: label_correlations(x, y), n_features: d }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "fit must be called before predict");
        let mut acc = vec![0.0f32; x.rows()];
        for tree in &self.trees {
            for (a, p) in acc.iter_mut().zip(tree.predict(x)) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f32;
        acc.into_iter().map(|v| (v * inv).clamp(0.0, 1.0)).collect()
    }

    fn signed_importance(&self) -> Vec<f32> {
        let mut total = vec![0.0f32; self.n_features];
        for tree in &self.trees {
            for (t, i) in total.iter_mut().zip(tree.importances()) {
                *t += i;
            }
        }
        let inv = 1.0 / self.trees.len().max(1) as f32;
        for t in &mut total {
            *t *= inv;
        }
        apply_signs(&total, &self.signs)
    }
}

/// Random Forest (RF): bootstrap rows + √d feature subsampling per split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    /// Ensemble configuration.
    pub params: ForestParams,
    seed: u64,
    ensemble: Option<Ensemble>,
}

impl RandomForest {
    /// A 60-tree forest (seeded).
    pub fn new(seed: u64) -> Self {
        Self {
            params: ForestParams {
                n_trees: 60,
                max_depth: 10,
                min_samples_leaf: 1,
                bootstrap: true,
                random_threshold: false,
            },
            seed,
            ensemble: None,
        }
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        self.ensemble = Some(Ensemble::fit(x, y, &self.params, self.seed));
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        self.ensemble.as_ref().expect("fit before predict").predict_proba(x)
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::RandomForest
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Rf(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        self.ensemble.as_ref().map(Ensemble::signed_importance).unwrap_or_default()
    }
}

/// Extremely randomized trees (ET): full sample per tree, random split
/// thresholds — lower variance per tree, faster fits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtraTrees {
    /// Ensemble configuration.
    pub params: ForestParams,
    seed: u64,
    ensemble: Option<Ensemble>,
}

impl ExtraTrees {
    /// A 60-tree extra-trees ensemble (seeded).
    pub fn new(seed: u64) -> Self {
        Self {
            params: ForestParams {
                n_trees: 60,
                max_depth: 10,
                min_samples_leaf: 1,
                bootstrap: false,
                random_threshold: true,
            },
            seed,
            ensemble: None,
        }
    }
}

impl Classifier for ExtraTrees {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        self.ensemble = Some(Ensemble::fit(x, y, &self.params, self.seed));
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        self.ensemble.as_ref().expect("fit before predict").predict_proba(x)
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::ExtraTrees
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Et(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        self.ensemble.as_ref().map(Ensemble::signed_importance).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, single_feature, xor};

    #[test]
    fn rf_learns_xor() {
        let (x, y) = xor(400, 61);
        let mut rf = RandomForest::new(1);
        rf.fit(&x, &y);
        let acc = rf.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc as f32 / 400.0 > 0.93, "accuracy {acc}/400");
    }

    #[test]
    fn et_learns_blobs() {
        let (x, y) = blobs(60, 3, 62);
        let mut et = ExtraTrees::new(2);
        et.fit(&x, &y);
        let acc = et.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 114, "accuracy {acc}/120");
    }

    #[test]
    fn rf_importance_finds_informative_feature() {
        let (x, y) = single_feature(500, 5, 63);
        let mut rf = RandomForest::new(3);
        rf.fit(&x, &y);
        let imp = rf.signed_importance();
        for j in 1..5 {
            assert!(imp[0] > imp[j].abs(), "{imp:?}");
        }
    }

    #[test]
    fn ensembles_are_deterministic_per_seed() {
        let (x, y) = blobs(30, 2, 64);
        let mut a = RandomForest::new(9);
        let mut b = RandomForest::new(9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let (x, y) = xor(200, 65);
        let mut a = RandomForest::new(1);
        let mut b = RandomForest::new(2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict_proba(&x), b.predict_proba(&x));
    }

    #[test]
    fn probabilities_average_trees() {
        let (x, y) = blobs(20, 2, 66);
        let mut rf = RandomForest::new(0);
        rf.params.n_trees = 5;
        rf.fit(&x, &y);
        for p in rf.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
