//! Serialization of fitted classifiers.
//!
//! The pool hands out `Box<dyn Classifier>`, which cannot be serialized
//! directly; [`AnyClassifier`] is the closed sum of the ten concrete types,
//! produced by [`crate::Classifier::snapshot`] and convertible back into a
//! boxed trait object. `wym-core` uses this to persist fitted WYM models.

use crate::boost::{AdaBoost, GradientBoosting};
use crate::forest::{ExtraTrees, RandomForest};
use crate::knn::KNearestNeighbors;
use crate::lda::LinearDiscriminantAnalysis;
use crate::linear::{LinearSvm, LogisticRegression};
use crate::nb::GaussianNaiveBayes;
use crate::tree::DecisionTree;
use crate::{Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};

/// A serializable snapshot of any pool classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyClassifier {
    /// Logistic regression.
    Lr(LogisticRegression),
    /// Linear discriminant analysis.
    Lda(LinearDiscriminantAnalysis),
    /// K-nearest neighbors (stores its training data).
    Knn(KNearestNeighbors),
    /// CART decision tree.
    Dt(DecisionTree),
    /// Gaussian naive Bayes.
    Nb(GaussianNaiveBayes),
    /// Linear SVM.
    Svm(LinearSvm),
    /// AdaBoost over stumps.
    Ab(AdaBoost),
    /// Gradient boosting.
    Gbm(GradientBoosting),
    /// Random forest.
    Rf(RandomForest),
    /// Extra trees.
    Et(ExtraTrees),
}

impl AnyClassifier {
    /// The pool kind of the snapshot.
    pub fn kind(&self) -> ClassifierKind {
        match self {
            AnyClassifier::Lr(_) => ClassifierKind::LogisticRegression,
            AnyClassifier::Lda(_) => ClassifierKind::Lda,
            AnyClassifier::Knn(_) => ClassifierKind::Knn,
            AnyClassifier::Dt(_) => ClassifierKind::DecisionTree,
            AnyClassifier::Nb(_) => ClassifierKind::NaiveBayes,
            AnyClassifier::Svm(_) => ClassifierKind::Svm,
            AnyClassifier::Ab(_) => ClassifierKind::AdaBoost,
            AnyClassifier::Gbm(_) => ClassifierKind::GradientBoosting,
            AnyClassifier::Rf(_) => ClassifierKind::RandomForest,
            AnyClassifier::Et(_) => ClassifierKind::ExtraTrees,
        }
    }

    /// Rehydrates the snapshot into a boxed trait object.
    pub fn into_boxed(self) -> Box<dyn Classifier> {
        match self {
            AnyClassifier::Lr(m) => Box::new(m),
            AnyClassifier::Lda(m) => Box::new(m),
            AnyClassifier::Knn(m) => Box::new(m),
            AnyClassifier::Dt(m) => Box::new(m),
            AnyClassifier::Nb(m) => Box::new(m),
            AnyClassifier::Svm(m) => Box::new(m),
            AnyClassifier::Ab(m) => Box::new(m),
            AnyClassifier::Gbm(m) => Box::new(m),
            AnyClassifier::Rf(m) => Box::new(m),
            AnyClassifier::Et(m) => Box::new(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::blobs;

    #[test]
    fn snapshot_roundtrip_preserves_predictions_for_all_kinds() {
        let (x, y) = blobs(40, 3, 91);
        for kind in ClassifierKind::ALL {
            let mut model = kind.build(1);
            model.fit(&x, &y);
            let before = model.predict_proba(&x);
            let snap = model.snapshot();
            assert_eq!(snap.kind(), kind);
            let json = serde_json::to_string(&snap).expect("serialize");
            let back: AnyClassifier = serde_json::from_str(&json).expect("deserialize");
            let restored = back.into_boxed();
            let after = restored.predict_proba(&x);
            assert_eq!(before, after, "{}", kind.short_name());
        }
    }
}
