//! Binary classification metrics.
//!
//! The paper evaluates everything with the F1 score of the match class,
//! the standard EM convention (match is the rare class, so accuracy is
//! uninformative).

use serde::{Deserialize, Serialize};

/// Confusion counts for a binary task where `1` is the positive class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryConfusion {
    /// Tallies predictions against gold labels.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn from_preds(preds: &[u8], gold: &[u8]) -> Self {
        assert_eq!(preds.len(), gold.len(), "predictions / labels length mismatch");
        let mut c = Self::default();
        for (&p, &g) in preds.iter().zip(gold) {
            match (p != 0, g != 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision of the positive class; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f32 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f32 / denom as f32
        }
    }

    /// Recall of the positive class; 0 when there are no positives.
    pub fn recall(&self) -> f32 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f32 / denom as f32
        }
    }

    /// F1 of the positive class; 0 when precision + recall is 0.
    pub fn f1(&self) -> f32 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f32 / total as f32
        }
    }

    /// Total number of examples tallied.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

/// Convenience: F1 of the positive class directly from label slices.
pub fn f1_score(preds: &[u8], gold: &[u8]) -> f32 {
    BinaryConfusion::from_preds(preds, gold).f1()
}

/// Convenience: accuracy directly from label slices.
pub fn accuracy(preds: &[u8], gold: &[u8]) -> f32 {
    BinaryConfusion::from_preds(preds, gold).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let c = BinaryConfusion::from_preds(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn known_confusion_counts() {
        let preds = [1, 1, 0, 0, 1];
        let gold = [1, 0, 0, 1, 1];
        let c = BinaryConfusion::from_preds(&preds, &gold);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-6);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-6);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_cases_return_zero_not_nan() {
        // No positive predictions at all.
        let c = BinaryConfusion::from_preds(&[0, 0], &[1, 1]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
        // No positives in gold.
        let c = BinaryConfusion::from_preds(&[0, 0], &[0, 0]);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn all_wrong() {
        let c = BinaryConfusion::from_preds(&[1, 0], &[0, 1]);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_lengths() {
        let _ = BinaryConfusion::from_preds(&[1], &[1, 0]);
    }

    #[test]
    fn f1_score_helper_agrees() {
        let preds = [1, 0, 1];
        let gold = [1, 1, 1];
        assert_eq!(f1_score(&preds, &gold), BinaryConfusion::from_preds(&preds, &gold).f1());
    }
}
