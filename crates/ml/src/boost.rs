//! Boosted ensembles: AdaBoost over stumps and gradient boosting.

use crate::tree::{Tree, TreeParams};
use crate::{apply_signs, label_correlations, Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::{Matrix, Rng64};

fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A decision stump: predict +1 when `polarity * (x[feature] - threshold) > 0`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Stump {
    feature: usize,
    threshold: f32,
    polarity: f32,
    alpha: f32,
}

impl Stump {
    fn predict_one(&self, row: &[f32]) -> f32 {
        if self.polarity * (row[self.feature] - self.threshold) > 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// AdaBoost (discrete SAMME) over exhaustively searched weighted stumps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaBoost {
    /// Number of boosting rounds.
    pub rounds: usize,
    #[allow(dead_code)]
    seed: u64,
    stumps: Vec<Stump>,
    signs: Vec<f32>,
    n_features: usize,
}

impl AdaBoost {
    /// A 50-round booster (seed kept for interface parity; the exhaustive
    /// stump search is deterministic).
    pub fn new(seed: u64) -> Self {
        Self { rounds: 50, seed, stumps: Vec::new(), signs: Vec::new(), n_features: 0 }
    }

    /// Weighted error-minimizing stump over all features and thresholds.
    ///
    /// For each feature, sorting the values lets the weighted error of every
    /// threshold be computed in one scan: start from "predict all +1"
    /// (error = Σ w over negatives) and flip samples as the threshold passes
    /// them.
    fn best_stump(x: &Matrix, targets: &[f32], w: &[f32]) -> Stump {
        let n = targets.len();
        let mut best =
            Stump { feature: 0, threshold: f32::NEG_INFINITY, polarity: 1.0, alpha: 0.0 };
        let mut best_err = f32::INFINITY;
        let mut order: Vec<usize> = (0..n).collect();
        for f in 0..x.cols() {
            order.sort_by(|&a, &b| x[(a, f)].total_cmp(&x[(b, f)]));
            // err(+1 side right of threshold): threshold below all values
            // means everything predicted +1.
            let mut err_pos: f32 = (0..n).filter(|&i| targets[i] < 0.0).map(|i| w[i]).sum();
            // Evaluate "threshold below everything", then walk upward.
            let eval = |err_pos: f32, thr: f32, best: &mut Stump, best_err: &mut f32, f| {
                // polarity +1: predict +1 above threshold.
                if err_pos < *best_err {
                    *best_err = err_pos;
                    *best = Stump { feature: f, threshold: thr, polarity: 1.0, alpha: 0.0 };
                }
                let err_neg = 1.0 - err_pos; // weights are normalized
                if err_neg < *best_err {
                    *best_err = err_neg;
                    *best = Stump { feature: f, threshold: thr, polarity: -1.0, alpha: 0.0 };
                }
            };
            let first_val = x[(order[0], f)];
            eval(err_pos, first_val - 1.0, &mut best, &mut best_err, f);
            for k in 0..n {
                let i = order[k];
                // Sample i moves from the "+1 side" to the "−1 side".
                if targets[i] > 0.0 {
                    err_pos += w[i];
                } else {
                    err_pos -= w[i];
                }
                let v = x[(i, f)];
                let next = if k + 1 < n { x[(order[k + 1], f)] } else { v + 1.0 };
                if next > v + 1e-12 {
                    eval(err_pos, 0.5 * (v + next), &mut best, &mut best_err, f);
                }
            }
        }
        best
    }
}

impl Classifier for AdaBoost {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let n = y.len();
        self.n_features = x.cols();
        self.signs = label_correlations(x, y);
        self.stumps.clear();
        let targets: Vec<f32> = y.iter().map(|&v| if v == 1 { 1.0 } else { -1.0 }).collect();
        let mut w = vec![1.0 / n as f32; n];
        for _ in 0..self.rounds {
            let mut stump = Self::best_stump(x, &targets, &w);
            let mut err: f32 = 0.0;
            let preds: Vec<f32> = x.iter_rows().map(|r| stump.predict_one(r)).collect();
            for i in 0..n {
                if preds[i] != targets[i] {
                    err += w[i];
                }
            }
            let err = err.clamp(1e-6, 1.0 - 1e-6);
            if err >= 0.5 {
                break; // no better than chance: stop boosting
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            stump.alpha = alpha;
            self.stumps.push(stump);
            // Reweight and normalize.
            let mut total = 0.0f32;
            for i in 0..n {
                w[i] *= (-alpha * targets[i] * preds[i]).exp();
                total += w[i];
            }
            for wi in &mut w {
                *wi /= total;
            }
            if err < 1e-5 {
                break; // perfectly separated
            }
        }
        if self.stumps.is_empty() {
            // Degenerate data: fall back to the prior as a constant stump.
            let pos = y.iter().filter(|&&v| v == 1).count() as f32 / n as f32;
            self.stumps.push(Stump {
                feature: 0,
                threshold: f32::NEG_INFINITY,
                polarity: if pos >= 0.5 { 1.0 } else { -1.0 },
                alpha: 1.0,
            });
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.stumps.is_empty(), "fit before predict");
        let alpha_total: f32 = self.stumps.iter().map(|s| s.alpha).sum();
        let scale = if alpha_total > 0.0 { 2.0 / alpha_total } else { 1.0 };
        x.iter_rows()
            .map(|row| {
                let margin: f32 = self.stumps.iter().map(|s| s.alpha * s.predict_one(row)).sum();
                sigmoid(margin * scale)
            })
            .collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::AdaBoost
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Ab(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        let mut imp = vec![0.0f32; self.n_features];
        for s in &self.stumps {
            if s.threshold.is_finite() {
                imp[s.feature] += s.alpha.abs();
            }
        }
        apply_signs(&imp, &self.signs)
    }
}

/// Gradient boosting on the logistic loss with shallow regression trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GradientBoosting {
    /// Boosting rounds.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f32,
    /// Depth of each residual tree.
    pub max_depth: usize,
    seed: u64,
    init: f32,
    trees: Vec<Tree>,
    signs: Vec<f32>,
    n_features: usize,
}

impl GradientBoosting {
    /// An 80-round, depth-3, lr-0.1 booster (seeded).
    pub fn new(seed: u64) -> Self {
        Self {
            rounds: 80,
            learning_rate: 0.1,
            max_depth: 3,
            seed,
            init: 0.0,
            trees: Vec::new(),
            signs: Vec::new(),
            n_features: 0,
        }
    }
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let n = y.len();
        self.n_features = x.cols();
        self.signs = label_correlations(x, y);
        self.trees.clear();
        let pos = y.iter().filter(|&&v| v == 1).count() as f32 / n as f32;
        let pos = pos.clamp(1e-4, 1.0 - 1e-4);
        self.init = (pos / (1.0 - pos)).ln();
        let mut f: Vec<f32> = vec![self.init; n];
        let idx: Vec<usize> = (0..n).collect();
        let params = TreeParams {
            max_depth: self.max_depth,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
            random_threshold: false,
        };
        let mut rng = Rng64::new(self.seed);
        let mut residual = vec![0.0f32; n];
        for _ in 0..self.rounds {
            for i in 0..n {
                residual[i] = y[i] as f32 - sigmoid(f[i]);
            }
            let tree = Tree::fit(x, &residual, &idx, &params, &mut rng);
            let update = tree.predict(x);
            for i in 0..n {
                f[i] += self.learning_rate * update[i];
            }
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.trees.is_empty(), "fit before predict");
        let mut f = vec![self.init; x.rows()];
        for tree in &self.trees {
            for (fi, u) in f.iter_mut().zip(tree.predict(x)) {
                *fi += self.learning_rate * u;
            }
        }
        f.into_iter().map(sigmoid).collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::GradientBoosting
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Gbm(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        let mut imp = vec![0.0f32; self.n_features];
        for tree in &self.trees {
            for (t, i) in imp.iter_mut().zip(tree.importances()) {
                *t += i;
            }
        }
        apply_signs(&imp, &self.signs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, single_feature, xor};

    #[test]
    fn adaboost_learns_blobs() {
        let (x, y) = blobs(50, 3, 71);
        let mut ab = AdaBoost::new(0);
        ab.fit(&x, &y);
        let acc = ab.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 97, "accuracy {acc}/100");
    }

    #[test]
    fn adaboost_improves_on_chance_for_xor() {
        // Discrete AdaBoost over axis-aligned stumps is structurally weak on
        // XOR (every stump is near-chance once reweighted); it should still
        // clearly beat the 50% baseline.
        let (x, y) = xor(400, 72);
        let mut ab = AdaBoost::new(0);
        ab.rounds = 150;
        ab.fit(&x, &y);
        let acc = ab.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc as f32 / 400.0 > 0.65, "accuracy {acc}/400");
    }

    #[test]
    fn adaboost_stops_on_perfect_separation() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0], &[11.0]]);
        let y = vec![0, 0, 1, 1];
        let mut ab = AdaBoost::new(0);
        ab.fit(&x, &y);
        assert!(ab.stumps.len() <= 2, "separable data needs one stump, got {}", ab.stumps.len());
        assert_eq!(ab.predict(&x), y);
    }

    #[test]
    fn adaboost_single_class_degenerate() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let mut ab = AdaBoost::new(0);
        ab.fit(&x, &[1, 1]);
        // Query within the observed range: everything must look positive.
        let p = ab.predict_proba(&Matrix::from_rows(&[&[1.5]]));
        assert!(p[0] > 0.5);
    }

    #[test]
    fn gbm_learns_xor() {
        let (x, y) = xor(400, 73);
        let mut gbm = GradientBoosting::new(0);
        gbm.fit(&x, &y);
        let acc = gbm.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc as f32 / 400.0 > 0.93, "accuracy {acc}/400");
    }

    #[test]
    fn gbm_importance_on_informative_feature() {
        let (x, y) = single_feature(500, 4, 74);
        let mut gbm = GradientBoosting::new(0);
        gbm.fit(&x, &y);
        let imp = gbm.signed_importance();
        for j in 1..4 {
            assert!(imp[0] > imp[j].abs(), "{imp:?}");
        }
    }

    #[test]
    fn gbm_init_reflects_class_prior() {
        let mut x = Matrix::zeros(0, 1);
        let mut y = Vec::new();
        for i in 0..100 {
            x.push_row(&[i as f32]);
            y.push(u8::from(i < 10)); // 10% positive
        }
        let mut gbm = GradientBoosting::new(0);
        gbm.rounds = 1;
        gbm.fit(&x, &y);
        assert!((sigmoid(gbm.init) - 0.1).abs() < 0.01);
    }

    #[test]
    fn boosting_deterministic() {
        let (x, y) = blobs(30, 2, 75);
        let mut a = GradientBoosting::new(4);
        let mut b = GradientBoosting::new(4);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
    }
}
