//! Linear Discriminant Analysis.

use crate::{Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::solve::solve;
use wym_linalg::vector::{axpy, dot};
use wym_linalg::Matrix;

fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Two-class LDA with shrinkage-regularized pooled covariance.
///
/// The discriminant direction solves `Σ w = μ₁ − μ₀`; the intercept places
/// the boundary at the midpoint adjusted by the class priors. Shrinkage
/// `Σ ← (1−γ)Σ + γ·tr(Σ)/d·I` keeps the system solvable on the engineered
/// WYM features, which often contain near-constant columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearDiscriminantAnalysis {
    /// Shrinkage intensity γ in `[0, 1]`.
    pub shrinkage: f32,
    coef: Vec<f32>,
    intercept: f32,
}

impl Default for LinearDiscriminantAnalysis {
    fn default() -> Self {
        Self { shrinkage: 0.1, coef: Vec::new(), intercept: 0.0 }
    }
}

impl LinearDiscriminantAnalysis {
    /// Fitted discriminant coefficients.
    pub fn coefficients(&self) -> &[f32] {
        &self.coef
    }
}

impl Classifier for LinearDiscriminantAnalysis {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let d = x.cols();
        let idx1: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 1).collect();
        let idx0: Vec<usize> = (0..y.len()).filter(|&i| y[i] == 0).collect();
        // Degenerate single-class training data: constant prediction.
        if idx0.is_empty() || idx1.is_empty() {
            self.coef = vec![0.0; d];
            self.intercept = if idx0.is_empty() { 10.0 } else { -10.0 };
            return;
        }
        let x1 = x.select_rows(&idx1);
        let x0 = x.select_rows(&idx0);
        let mu1 = x1.col_mean();
        let mu0 = x0.col_mean();

        // Pooled within-class covariance: center each row once, then rank-1
        // update `cov[a, ..] += centered[a] * centered` row by row through
        // the dispatched axpy kernel (zero centered coordinates still skip
        // their whole row).
        let mut cov = Matrix::zeros(d, d);
        let mut centered = vec![0.0f32; d];
        for (part, mu) in [(&x1, &mu1), (&x0, &mu0)] {
            for row in part.iter_rows() {
                for ((c, &v), &m) in centered.iter_mut().zip(row).zip(mu) {
                    *c = v - m;
                }
                for a in 0..d {
                    let da = centered[a];
                    if da != 0.0 {
                        axpy(da, &centered, cov.row_mut(a));
                    }
                }
            }
        }
        let denom = (y.len() - 2).max(1) as f32;
        cov.scale_inplace(1.0 / denom);

        // Shrinkage toward the scaled identity.
        let trace: f32 = (0..d).map(|i| cov[(i, i)]).sum();
        let target = (trace / d.max(1) as f32).max(1e-6);
        let g = self.shrinkage.clamp(0.0, 1.0);
        cov.scale_inplace(1.0 - g);
        for i in 0..d {
            cov[(i, i)] += g * target;
        }

        let diff: Vec<f32> = mu1.iter().zip(&mu0).map(|(a, b)| a - b).collect();
        self.coef = match solve(&cov, &diff) {
            Ok(w) => w,
            // Fall back to the diagonal approximation on singular systems.
            Err(_) => diff
                .iter()
                .enumerate()
                .map(|(i, &v)| v / cov[(i, i)].max(1e-6))
                .collect(),
        };
        let mid: Vec<f32> = mu1.iter().zip(&mu0).map(|(a, b)| 0.5 * (a + b)).collect();
        let prior = (idx1.len() as f32 / idx0.len() as f32).ln();
        self.intercept = prior - dot(&self.coef, &mid);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.coef.len(), "model fitted on different width");
        x.iter_rows().map(|row| sigmoid(dot(row, &self.coef) + self.intercept)).collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::Lda
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Lda(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        self.coef.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, single_feature};

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(50, 3, 21);
        let mut lda = LinearDiscriminantAnalysis::default();
        lda.fit(&x, &y);
        let acc = lda.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 97, "accuracy {acc}/100");
    }

    #[test]
    fn informative_feature_dominates() {
        let (x, y) = single_feature(500, 3, 22);
        let mut lda = LinearDiscriminantAnalysis::default();
        lda.fit(&x, &y);
        let imp = lda.signed_importance();
        assert!(imp[0] > imp[1].abs() && imp[0] > imp[2].abs(), "{imp:?}");
    }

    #[test]
    fn survives_constant_column() {
        // A constant column makes the covariance singular without shrinkage.
        let x = Matrix::from_rows(&[
            &[1.0, 5.0],
            &[2.0, 5.0],
            &[-1.0, 5.0],
            &[-2.0, 5.0],
        ]);
        let y = vec![1, 1, 0, 0];
        let mut lda = LinearDiscriminantAnalysis::default();
        lda.fit(&x, &y);
        assert_eq!(lda.predict(&x), y);
    }

    #[test]
    fn single_class_training_is_constant() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let mut lda = LinearDiscriminantAnalysis::default();
        lda.fit(&x, &[1, 1]);
        let p = lda.predict_proba(&Matrix::from_rows(&[&[5.0]]));
        assert!(p[0] > 0.99);
    }

    #[test]
    fn priors_shift_the_boundary() {
        // Same geometry, heavily imbalanced classes: boundary moves toward
        // the rare class.
        let mut xb = Matrix::zeros(0, 1);
        let mut yb = vec![0u8; 90];
        yb.extend(vec![1u8; 10]);
        for _ in 0..90 {
            xb.push_row(&[-1.0]);
        }
        for _ in 0..10 {
            xb.push_row(&[1.0]);
        }
        let mut lda = LinearDiscriminantAnalysis::default();
        lda.fit(&xb, &yb);
        let p_mid = lda.predict_proba(&Matrix::from_rows(&[&[0.0]]))[0];
        assert!(p_mid < 0.5, "midpoint must lean to the majority class, p = {p_mid}");
    }
}
