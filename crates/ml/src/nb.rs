//! Gaussian Naive Bayes.

use crate::{apply_signs, label_correlations, Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::Matrix;

/// Gaussian Naive Bayes with per-class diagonal covariance and variance
/// smoothing (a fraction of the largest feature variance, as in
/// scikit-learn's `var_smoothing`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    mean: [Vec<f32>; 2],
    var: [Vec<f32>; 2],
    log_prior: [f32; 2],
    signs: Vec<f32>,
}

impl Classifier for GaussianNaiveBayes {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let d = x.cols();
        let global_var_max =
            x.col_std().into_iter().map(|s| s * s).fold(0.0f32, f32::max).max(1e-9);
        let smoothing = 1e-9f32.max(1e-4 * global_var_max);

        for class in 0..2u8 {
            let idx: Vec<usize> = (0..y.len()).filter(|&i| y[i] == class).collect();
            let c = class as usize;
            if idx.is_empty() {
                self.mean[c] = vec![0.0; d];
                self.var[c] = vec![1.0; d];
                self.log_prior[c] = f32::NEG_INFINITY;
                continue;
            }
            let part = x.select_rows(&idx);
            self.mean[c] = part.col_mean();
            self.var[c] =
                part.col_std().into_iter().map(|s| s * s + smoothing).collect();
            self.log_prior[c] = (idx.len() as f32 / y.len() as f32).ln();
        }
        self.signs = label_correlations(x, y);
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.mean[0].len(), "model fitted on different width");
        x.iter_rows()
            .map(|row| {
                let mut log_like = [0.0f64; 2];
                #[allow(clippy::needless_range_loop)]
                for c in 0..2 {
                    if self.log_prior[c].is_infinite() {
                        log_like[c] = f64::NEG_INFINITY;
                        continue;
                    }
                    let mut ll = self.log_prior[c] as f64;
                    for ((&v, &m), &var) in
                        row.iter().zip(&self.mean[c]).zip(&self.var[c])
                    {
                        let var = var as f64;
                        let diff = (v - m) as f64;
                        ll += -0.5 * ((std::f64::consts::TAU * var).ln() + diff * diff / var);
                    }
                    log_like[c] = ll;
                }
                // Normalized posterior for class 1.
                let max = log_like[0].max(log_like[1]);
                if max.is_infinite() {
                    return 0.5;
                }
                let e0 = (log_like[0] - max).exp();
                let e1 = (log_like[1] - max).exp();
                (e1 / (e0 + e1)) as f32
            })
            .collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::NaiveBayes
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Nb(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        // Importance = standardized mean gap between classes, signed by the
        // correlation direction (they agree by construction; the correlation
        // handles near-zero-variance ties).
        let gaps: Vec<f32> = self.mean[1]
            .iter()
            .zip(&self.mean[0])
            .zip(self.var[0].iter().zip(&self.var[1]))
            .map(|((m1, m0), (v0, v1))| {
                let pooled = (0.5 * (v0 + v1)).sqrt().max(1e-6);
                ((m1 - m0) / pooled).abs()
            })
            .collect();
        apply_signs(&gaps, &self.signs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, single_feature};

    #[test]
    fn learns_blobs() {
        let (x, y) = blobs(50, 3, 41);
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y);
        let acc = nb.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 97, "accuracy {acc}/100");
    }

    #[test]
    fn posterior_confidence_scales_with_distance() {
        let (x, y) = blobs(50, 1, 42);
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y);
        let probe = Matrix::from_rows(&[&[0.5], &[4.0]]);
        let p = nb.predict_proba(&probe);
        assert!(p[1] > p[0], "farther into class-1 territory must be more confident: {p:?}");
    }

    #[test]
    fn importance_concentrates_on_informative_feature() {
        let (x, y) = single_feature(600, 4, 43);
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y);
        let imp = nb.signed_importance();
        for j in 1..4 {
            assert!(imp[0] > imp[j].abs(), "{imp:?}");
        }
    }

    #[test]
    fn single_class_training_degrades_gracefully() {
        let x = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &[1, 1]);
        let p = nb.predict_proba(&Matrix::from_rows(&[&[1.5]]));
        assert!(p[0] > 0.99, "all-positive training data: {p:?}");
    }

    #[test]
    fn constant_feature_does_not_produce_nan() {
        let x = Matrix::from_rows(&[&[1.0, 3.0], &[1.0, -3.0], &[1.0, 3.5], &[1.0, -3.5]]);
        let y = vec![1, 0, 1, 0];
        let mut nb = GaussianNaiveBayes::default();
        nb.fit(&x, &y);
        let p = nb.predict_proba(&x);
        assert!(p.iter().all(|v| v.is_finite()));
        assert_eq!(nb.predict(&x), y);
    }
}
