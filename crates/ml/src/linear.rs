//! Linear models: logistic regression and a linear SVM.

use crate::{Classifier, ClassifierKind};
use serde::{Deserialize, Serialize};
use wym_linalg::vector::{axpy, dot};
use wym_linalg::Matrix;

fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// L2-regularized logistic regression trained by full-batch gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Gradient-descent learning rate.
    pub lr: f32,
    /// Number of gradient steps.
    pub iters: usize,
    /// L2 regularization strength.
    pub l2: f32,
    coef: Vec<f32>,
    intercept: f32,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self { lr: 0.3, iters: 400, l2: 1e-3, coef: Vec::new(), intercept: 0.0 }
    }
}

impl LogisticRegression {
    /// Fitted coefficients (one per feature).
    pub fn coefficients(&self) -> &[f32] {
        &self.coef
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f32 {
        self.intercept
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let (n, d) = x.shape();
        self.coef = vec![0.0; d];
        self.intercept = 0.0;
        let inv_n = 1.0 / n as f32;
        let mut grad = vec![0.0f32; d];
        for _ in 0..self.iters {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0f32;
            for (i, row) in x.iter_rows().enumerate() {
                let err = sigmoid(dot(row, &self.coef) + self.intercept) - y[i] as f32;
                axpy(err, row, &mut grad);
                gb += err;
            }
            for (c, g) in self.coef.iter_mut().zip(&grad) {
                *c -= self.lr * (g * inv_n + self.l2 * *c);
            }
            self.intercept -= self.lr * gb * inv_n;
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.coef.len(), "model fitted on different width");
        x.iter_rows().map(|row| sigmoid(dot(row, &self.coef) + self.intercept)).collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::LogisticRegression
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Lr(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        self.coef.clone()
    }
}

/// Linear SVM with squared-hinge loss, trained by full-batch gradient
/// descent; probabilities come from a logistic link on the margin
/// (monotone, uncalibrated — sufficient for 0.5-threshold decisions and
/// top-k rankings).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Gradient-descent learning rate.
    pub lr: f32,
    /// Number of gradient steps.
    pub iters: usize,
    /// L2 regularization strength.
    pub l2: f32,
    coef: Vec<f32>,
    intercept: f32,
}

impl Default for LinearSvm {
    fn default() -> Self {
        Self { lr: 0.1, iters: 400, l2: 1e-3, coef: Vec::new(), intercept: 0.0 }
    }
}

impl LinearSvm {
    /// Raw decision margins `w·x + b`.
    pub fn decision_function(&self, x: &Matrix) -> Vec<f32> {
        x.iter_rows().map(|row| dot(row, &self.coef) + self.intercept).collect()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "x / y length mismatch");
        assert!(!y.is_empty(), "cannot fit on an empty dataset");
        let (n, d) = x.shape();
        self.coef = vec![0.0; d];
        self.intercept = 0.0;
        let targets: Vec<f32> = y.iter().map(|&v| if v == 1 { 1.0 } else { -1.0 }).collect();
        let inv_n = 1.0 / n as f32;
        let mut grad = vec![0.0f32; d];
        for _ in 0..self.iters {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0f32;
            for (i, row) in x.iter_rows().enumerate() {
                let t = targets[i];
                let margin = t * (dot(row, &self.coef) + self.intercept);
                if margin < 1.0 {
                    // d/dw of (1 - m)^2 = -2 (1 - m) t x
                    let scale = -2.0 * (1.0 - margin) * t;
                    axpy(scale, row, &mut grad);
                    gb += scale;
                }
            }
            for (c, g) in self.coef.iter_mut().zip(&grad) {
                *c -= self.lr * (g * inv_n + self.l2 * *c);
            }
            self.intercept -= self.lr * gb * inv_n;
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert_eq!(x.cols(), self.coef.len(), "model fitted on different width");
        self.decision_function(x).into_iter().map(sigmoid).collect()
    }

    fn kind(&self) -> ClassifierKind {
        ClassifierKind::Svm
    }

    fn snapshot(&self) -> crate::serial::AnyClassifier {
        crate::serial::AnyClassifier::Svm(self.clone())
    }

    fn signed_importance(&self) -> Vec<f32> {
        self.coef.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::{blobs, single_feature};

    #[test]
    fn lr_learns_blobs_and_coefficients_are_positive() {
        let (x, y) = blobs(50, 3, 1);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        let acc = lr.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 97, "accuracy {acc}/100");
        for &c in lr.coefficients() {
            assert!(c > 0.0, "coef {c} should be positive for blobs");
        }
    }

    #[test]
    fn lr_ranks_informative_feature_highest() {
        let (x, y) = single_feature(400, 4, 3);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        let imp = lr.signed_importance();
        let max_idx =
            imp.iter().enumerate().max_by(|a, b| a.1.abs().total_cmp(&b.1.abs())).unwrap().0;
        assert_eq!(max_idx, 0, "importances {imp:?}");
    }

    #[test]
    fn lr_probabilities_track_labels() {
        let (x, y) = blobs(30, 2, 5);
        let mut lr = LogisticRegression::default();
        lr.fit(&x, &y);
        let p = lr.predict_proba(&x);
        for (pi, &yi) in p.iter().zip(&y) {
            if yi == 1 {
                assert!(*pi > 0.5, "p {pi} for positive");
            } else {
                assert!(*pi < 0.5, "p {pi} for negative");
            }
        }
    }

    #[test]
    fn svm_learns_blobs() {
        let (x, y) = blobs(50, 3, 2);
        let mut svm = LinearSvm::default();
        svm.fit(&x, &y);
        let acc = svm.predict(&x).iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(acc >= 97, "accuracy {acc}/100");
    }

    #[test]
    fn svm_margin_sign_matches_prediction() {
        let (x, y) = blobs(20, 2, 9);
        let mut svm = LinearSvm::default();
        svm.fit(&x, &y);
        let margins = svm.decision_function(&x);
        let preds = svm.predict(&x);
        for (m, p) in margins.iter().zip(preds) {
            assert_eq!(u8::from(*m >= 0.0), p);
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn lr_rejects_empty() {
        let mut lr = LogisticRegression::default();
        lr.fit(&Matrix::zeros(0, 2), &[]);
    }

    #[test]
    fn deterministic_fits() {
        let (x, y) = blobs(20, 2, 4);
        let mut a = LogisticRegression::default();
        let mut b = LogisticRegression::default();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.coefficients(), b.coefficients());
    }
}
