//! DITTO proxy — the strongest comparator, by construction.
//!
//! DITTO (Li et al., VLDB 2021) serializes the whole pair into a BERT
//! cross-encoder and adds data augmentation and domain-knowledge injection.
//! The proxy mirrors each ingredient at laptop scale and is *strictly more
//! capable* than every other proxy, which is what drives Table 3's ranking:
//!
//! * *cross-encoding* → the richest feature tier
//!   ([`features::cross_features`]) plus extra full-text character-trigram
//!   and sorted-token signals no other proxy sees;
//! * *domain knowledge injection* → explicit product-code agreement features
//!   (inside the contrastive block);
//! * *data augmentation* → token-drop copies of every training record;
//! * *model capacity* → the same model search AutoML gets (the full
//!   classical pool), but over the larger feature set and augmented data.

use crate::features;
use crate::BaselineMatcher;
use wym_core::pipeline::EmPredictor;
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_embed::Embedder;
use wym_linalg::{Matrix, Rng64};
use wym_ml::{ClassifierPool, SelectedModel};
use wym_strsim::jaccard_tokens;
use wym_tokenize::Tokenizer;

/// Character trigrams of a string (used as a sub-word cross signal).
fn char_trigrams(s: &str) -> Vec<String> {
    let chars: Vec<char> = s.chars().filter(|c| !c.is_whitespace()).collect();
    if chars.len() < 3 {
        return vec![chars.iter().collect()];
    }
    (0..chars.len() - 2).map(|i| chars[i..i + 3].iter().collect()).collect()
}

/// The DITTO proxy.
pub struct Ditto {
    embedder: Embedder,
    tokenizer: Tokenizer,
    seed: u64,
    /// Token-drop augmentation copies per training record.
    pub augment_copies: usize,
    selected: Option<SelectedModel>,
}

impl Ditto {
    /// A DITTO proxy with 2× augmentation and full-pool model search.
    pub fn new(seed: u64) -> Self {
        Self {
            embedder: Embedder::new_static(48, seed),
            tokenizer: Tokenizer::default(),
            seed,
            augment_copies: 1,
            selected: None,
        }
    }

    fn features_of(&self, pair: &RecordPair) -> Vec<f32> {
        let mut f = features::cross_features(&self.embedder, &self.tokenizer, pair);
        // Sub-word cross signals unavailable to the other proxies.
        let l = pair.left.full_text().to_lowercase();
        let r = pair.right.full_text().to_lowercase();
        let lg = char_trigrams(&l);
        let rg = char_trigrams(&r);
        let lrefs: Vec<&str> = lg.iter().map(String::as_str).collect();
        let rrefs: Vec<&str> = rg.iter().map(String::as_str).collect();
        f.push(jaccard_tokens(&lrefs, &rrefs));
        // Order-insensitive token equality (serialization invariance).
        let mut lt = self.tokenizer.tokenize(&l);
        let mut rt = self.tokenizer.tokenize(&r);
        lt.sort();
        rt.sort();
        f.push(f32::from(lt == rt));
        f
    }

    /// Random token-drop copy (DITTO's augmentation operator).
    fn augment(pair: &RecordPair, rng: &mut Rng64) -> RecordPair {
        let drop_side = |values: &[String], rng: &mut Rng64| -> Vec<String> {
            values
                .iter()
                .map(|v| {
                    v.split_whitespace()
                        .filter(|_| !rng.gen_bool(0.05))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        };
        RecordPair {
            id: pair.id,
            label: pair.label,
            left: wym_data::Entity { values: drop_side(&pair.left.values, rng) },
            right: wym_data::Entity { values: drop_side(&pair.right.values, rng) },
        }
    }
}

impl EmPredictor for Ditto {
    fn proba(&self, pair: &RecordPair) -> f32 {
        let Some(selected) = &self.selected else { return 0.5 };
        let mut x = Matrix::zeros(0, 0);
        x.push_row(&self.features_of(pair));
        selected.predict_proba(&x)[0]
    }
}

impl BaselineMatcher for Ditto {
    fn name(&self) -> &'static str {
        "DITTO"
    }

    fn fit(&mut self, dataset: &EmDataset, split: &SplitIndices) {
        let mut rng = Rng64::new(self.seed ^ 0xD177);
        let expand = |idx: &[usize], rng: &mut Rng64, copies: usize| -> Vec<RecordPair> {
            let originals: Vec<RecordPair> =
                idx.iter().map(|&i| dataset.pairs[i].clone()).collect();
            let mut out = originals.clone();
            for _ in 0..copies {
                out.extend(originals.iter().map(|p| Self::augment(p, rng)));
            }
            out
        };
        let train_pairs = expand(&split.train, &mut rng, self.augment_copies);
        let val_pairs = expand(&split.val, &mut rng, 0);
        let build = |pairs: &[RecordPair]| {
            let mut x = Matrix::zeros(0, 0);
            let mut y = Vec::with_capacity(pairs.len());
            for p in pairs {
                x.push_row(&self.features_of(p));
                y.push(u8::from(p.label));
            }
            (x, y)
        };
        let (x_train, y_train) = build(&train_pairs);
        let (x_val, y_val) = build(&val_pairs);
        let pool = ClassifierPool { seed: self.seed, ..ClassifierPool::default() };
        self.selected = Some(pool.fit_select(&x_train, &y_train, &x_val, &y_val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::dataset_and_split;
    use crate::DmPlus;

    #[test]
    fn learns_a_clean_dataset_well() {
        let (dataset, split, test) = dataset_and_split("S-DA", 300);
        let mut m = Ditto::new(0);
        m.fit(&dataset, &split);
        let f1 = m.f1_on(&test);
        assert!(f1 > 0.8, "DITTO F1 {f1}");
    }

    #[test]
    fn at_least_matches_dm_plus_on_a_hard_dataset() {
        let (dataset, split, test) = dataset_and_split("S-WA", 400);
        let mut ditto = Ditto::new(0);
        ditto.fit(&dataset, &split);
        let mut dm = DmPlus::new(0);
        dm.fit(&dataset, &split);
        let fd = ditto.f1_on(&test);
        let fm = dm.f1_on(&test);
        assert!(
            fd >= fm - 0.05,
            "DITTO ({fd}) should not trail DM+ ({fm}) by more than noise"
        );
    }

    #[test]
    fn trigram_features_extend_the_cross_tier() {
        let (dataset, _, _) = dataset_and_split("S-FZ", 60);
        let d = Ditto::new(0);
        let f = d.features_of(&dataset.pairs[0]);
        let base = features::cross_features(&d.embedder, &d.tokenizer, &dataset.pairs[0]);
        assert_eq!(f.len(), base.len() + 2);
    }

    #[test]
    fn unfitted_is_uncertain() {
        let (dataset, _, _) = dataset_and_split("S-FZ", 60);
        assert_eq!(Ditto::new(0).proba(&dataset.pairs[0]), 0.5);
    }
}
