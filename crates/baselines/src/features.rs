//! Shared pair-feature extraction for the baseline matchers.
//!
//! Three feature tiers, mirroring the growing capacity of the proxied
//! systems:
//!
//! * [`attribute_features`] — 5 similarity summaries per schema attribute
//!   (DM+ tier);
//! * [`contrastive_features`] — shared-vs-unique token decomposition
//!   (CorDEL tier);
//! * [`cross_features`] — record-level and cross-attribute signals layered
//!   on top (AutoML / DITTO tier).

use wym_data::RecordPair;
use wym_embed::Embedder;
use wym_linalg::vector::{axpy, cosine, normalize};
use wym_strsim::{jaccard_tokens, jaro_winkler, levenshtein_sim, looks_like_code, numeric_sim};
use wym_tokenize::Tokenizer;

/// Unit centroid of the hashed embeddings of a token list.
fn centroid(embedder: &Embedder, tokens: &[String]) -> Vec<f32> {
    let mut c = vec![0.0f32; embedder.dim()];
    for t in tokens {
        axpy(1.0, &embedder.embed_token_static(t), &mut c);
    }
    normalize(&mut c);
    c
}

/// 5 similarity features for one aligned attribute pair:
/// `[token jaccard, value jaro-winkler, value levenshtein, numeric
/// similarity, embedding-centroid cosine]`.
pub fn attribute_pair_features(
    embedder: &Embedder,
    tokenizer: &Tokenizer,
    left: &str,
    right: &str,
) -> [f32; 5] {
    let lt = tokenizer.tokenize(left);
    let rt = tokenizer.tokenize(right);
    let lrefs: Vec<&str> = lt.iter().map(String::as_str).collect();
    let rrefs: Vec<&str> = rt.iter().map(String::as_str).collect();
    [
        jaccard_tokens(&lrefs, &rrefs),
        jaro_winkler(left, right),
        levenshtein_sim(left, right),
        numeric_sim(left.trim(), right.trim()),
        cosine(&centroid(embedder, &lt), &centroid(embedder, &rt)),
    ]
}

/// DM+ tier: the 5 features for each schema attribute, concatenated.
pub fn attribute_features(
    embedder: &Embedder,
    tokenizer: &Tokenizer,
    pair: &RecordPair,
) -> Vec<f32> {
    let n = pair.left.values.len().max(pair.right.values.len());
    let mut out = Vec::with_capacity(n * 5);
    let empty = String::new();
    for a in 0..n {
        let l = pair.left.values.get(a).unwrap_or(&empty);
        let r = pair.right.values.get(a).unwrap_or(&empty);
        out.extend(attribute_pair_features(embedder, tokenizer, l, r));
    }
    out
}

/// CorDEL tier: contrastive decomposition of the full token sets —
/// `[shared count, left-unique count, right-unique count, shared ratio,
/// unique ratio, shared-centroid norm contribution, unique-centroid cosine,
/// code agreement, code disagreement]`.
pub fn contrastive_features(
    embedder: &Embedder,
    tokenizer: &Tokenizer,
    pair: &RecordPair,
) -> Vec<f32> {
    let lt = tokenizer.tokenize(&pair.left.full_text());
    let rt = tokenizer.tokenize(&pair.right.full_text());
    let lset: std::collections::HashSet<&str> = lt.iter().map(String::as_str).collect();
    let rset: std::collections::HashSet<&str> = rt.iter().map(String::as_str).collect();
    let shared: Vec<String> =
        lset.intersection(&rset).map(|s| s.to_string()).collect();
    let l_unique: Vec<String> =
        lset.difference(&rset).map(|s| s.to_string()).collect();
    let r_unique: Vec<String> =
        rset.difference(&lset).map(|s| s.to_string()).collect();
    let total = (lset.len() + rset.len()).max(1) as f32;

    // Code tokens are decisive in product data: count exact agreements and
    // unmatched codes explicitly.
    let code_agree = shared.iter().filter(|t| looks_like_code(t)).count() as f32;
    let code_disagree = l_unique
        .iter()
        .chain(&r_unique)
        .filter(|t| looks_like_code(t))
        .count() as f32;

    let unique_cos = cosine(&centroid(embedder, &l_unique), &centroid(embedder, &r_unique));
    vec![
        shared.len() as f32,
        l_unique.len() as f32,
        r_unique.len() as f32,
        2.0 * shared.len() as f32 / total,
        (l_unique.len() + r_unique.len()) as f32 / total,
        shared.len() as f32 / lt.len().max(1).min(rt.len().max(1)) as f32,
        unique_cos,
        code_agree,
        code_disagree,
    ]
}

/// AutoML tier: attribute features plus record-level centroid cosine,
/// full-text similarities, and length signals — but *not* the contrastive
/// shared/unique/code block, which is CorDEL's and DITTO's distinguishing
/// signal.
pub fn basic_cross_features(
    embedder: &Embedder,
    tokenizer: &Tokenizer,
    pair: &RecordPair,
) -> Vec<f32> {
    let mut out = attribute_features(embedder, tokenizer, pair);
    append_record_level(&mut out, embedder, tokenizer, pair);
    out
}

/// DITTO tier: attribute + contrastive features plus the record-level
/// signals of [`basic_cross_features`].
pub fn cross_features(
    embedder: &Embedder,
    tokenizer: &Tokenizer,
    pair: &RecordPair,
) -> Vec<f32> {
    let mut out = attribute_features(embedder, tokenizer, pair);
    out.extend(contrastive_features(embedder, tokenizer, pair));
    append_record_level(&mut out, embedder, tokenizer, pair);
    out
}

/// Record-level similarity and length signals shared by the upper tiers.
fn append_record_level(
    out: &mut Vec<f32>,
    embedder: &Embedder,
    tokenizer: &Tokenizer,
    pair: &RecordPair,
) {
    let l_full = pair.left.full_text();
    let r_full = pair.right.full_text();
    let lt = tokenizer.tokenize(&l_full);
    let rt = tokenizer.tokenize(&r_full);
    out.push(cosine(&centroid(embedder, &lt), &centroid(embedder, &rt)));
    out.push(jaro_winkler(&l_full, &r_full));
    out.push(levenshtein_sim(&l_full, &r_full));
    out.push(lt.len() as f32);
    out.push(rt.len() as f32);
    out.push((lt.len() as f32 - rt.len() as f32).abs());
}

#[cfg(test)]
mod tests {
    use super::*;
    use wym_data::Entity;

    fn embedder() -> Embedder {
        Embedder::new_static(32, 0)
    }

    fn pair(l: Vec<&str>, r: Vec<&str>, label: bool) -> RecordPair {
        RecordPair { id: 0, label, left: Entity::new(l), right: Entity::new(r) }
    }

    #[test]
    fn identical_pairs_have_max_attribute_similarity() {
        let e = embedder();
        let t = Tokenizer::default();
        let f = attribute_pair_features(&e, &t, "digital camera", "digital camera");
        for v in f {
            assert!(v > 0.99, "{f:?}");
        }
    }

    #[test]
    fn attribute_features_width_is_5_per_attr() {
        let e = embedder();
        let t = Tokenizer::default();
        let p = pair(vec!["a", "b", "c"], vec!["a", "b", "c"], true);
        assert_eq!(attribute_features(&e, &t, &p).len(), 15);
    }

    #[test]
    fn contrastive_separates_shared_and_unique() {
        let e = embedder();
        let t = Tokenizer::default();
        let p = pair(vec!["camera zoom lens"], vec!["camera zoom filter"], true);
        let f = contrastive_features(&e, &t, &p);
        assert_eq!(f[0], 2.0); // shared: camera, zoom
        assert_eq!(f[1], 1.0); // left unique: lens
        assert_eq!(f[2], 1.0); // right unique: filter
    }

    #[test]
    fn code_agreement_flags() {
        let e = embedder();
        let t = Tokenizer::default();
        let same = pair(vec!["item 39400416"], vec!["item 39400416"], true);
        let diff = pair(vec!["item 39400416"], vec!["item 39400417"], false);
        let fs = contrastive_features(&e, &t, &same);
        let fd = contrastive_features(&e, &t, &diff);
        assert_eq!(fs[7], 1.0);
        assert_eq!(fs[8], 0.0);
        assert_eq!(fd[7], 0.0);
        assert_eq!(fd[8], 2.0);
    }

    #[test]
    fn match_features_dominate_non_match_features() {
        let e = embedder();
        let t = Tokenizer::default();
        let m = pair(vec!["sony camera x100", "300"], vec!["sony camera x100", "305"], true);
        let n = pair(vec!["sony camera x100", "300"], vec!["beer stout ale", "7"], false);
        let fm = cross_features(&e, &t, &m);
        let fn_ = cross_features(&e, &t, &n);
        assert_eq!(fm.len(), fn_.len());
        // The record-level centroid cosine (first cross feature after the
        // attribute + contrastive blocks) must separate them.
        let idx = 2 * 5 + 9;
        assert!(fm[idx] > fn_[idx] + 0.3, "{} vs {}", fm[idx], fn_[idx]);
    }

    #[test]
    fn ragged_attribute_counts_are_padded() {
        let e = embedder();
        let t = Tokenizer::default();
        let p = pair(vec!["a", "b"], vec!["a"], false);
        assert_eq!(attribute_features(&e, &t, &p).len(), 10);
    }
}
