//! AutoML (Hybrid-EM-Adapter) proxy.
//!
//! Paganelli et al. pipeline transformer-encoded EM features into AutoML
//! systems (AutoSklearn / AutoGluon / H2O), whose job is model search over
//! classical learners. The proxy reproduces that: the rich cross-feature
//! set plays the encoder's role, and `wym-ml`'s ten-member classifier pool
//! with validation-F1 selection plays the AutoML search.

use crate::features;
use crate::BaselineMatcher;
use wym_core::pipeline::EmPredictor;
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_embed::Embedder;
use wym_linalg::Matrix;
use wym_ml::{ClassifierPool, SelectedModel};
use wym_tokenize::Tokenizer;

/// The AutoML proxy.
pub struct AutoMl {
    embedder: Embedder,
    tokenizer: Tokenizer,
    seed: u64,
    selected: Option<SelectedModel>,
}

impl AutoMl {
    /// An AutoML proxy searching the full classical pool.
    pub fn new(seed: u64) -> Self {
        Self {
            embedder: Embedder::new_static(48, seed),
            tokenizer: Tokenizer::default(),
            seed,
            selected: None,
        }
    }

    /// The pool member the search selected (after `fit`).
    pub fn selected_kind(&self) -> Option<wym_ml::ClassifierKind> {
        self.selected.as_ref().map(|s| s.kind)
    }

    fn features_of(&self, pair: &RecordPair) -> Vec<f32> {
        features::basic_cross_features(&self.embedder, &self.tokenizer, pair)
    }
}

impl EmPredictor for AutoMl {
    fn proba(&self, pair: &RecordPair) -> f32 {
        let Some(selected) = &self.selected else { return 0.5 };
        let mut x = Matrix::zeros(0, 0);
        x.push_row(&self.features_of(pair));
        selected.predict_proba(&x)[0]
    }
}

impl BaselineMatcher for AutoMl {
    fn name(&self) -> &'static str {
        "AutoML"
    }

    fn fit(&mut self, dataset: &EmDataset, split: &SplitIndices) {
        let build = |idx: &[usize]| {
            let mut x = Matrix::zeros(0, 0);
            let mut y = Vec::with_capacity(idx.len());
            for &i in idx {
                x.push_row(&self.features_of(&dataset.pairs[i]));
                y.push(u8::from(dataset.pairs[i].label));
            }
            (x, y)
        };
        let (x_train, y_train) = build(&split.train);
        let (x_val, y_val) = build(&split.val);
        let pool = ClassifierPool { seed: self.seed, ..ClassifierPool::default() };
        self.selected = Some(pool.fit_select(&x_train, &y_train, &x_val, &y_val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::dataset_and_split;

    #[test]
    fn learns_and_reports_selected_kind() {
        let (dataset, split, test) = dataset_and_split("S-DA", 300);
        let mut m = AutoMl::new(0);
        assert!(m.selected_kind().is_none());
        m.fit(&dataset, &split);
        assert!(m.selected_kind().is_some());
        let f1 = m.f1_on(&test);
        assert!(f1 > 0.75, "AutoML F1 {f1}");
    }
}
