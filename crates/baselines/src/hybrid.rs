//! Hybrid matcher — the paper's second §6 future-work direction:
//! "experiment if decision units can be effectively used to train DL-based
//! EM systems".
//!
//! [`HybridUnits`] extends the DITTO proxy's feature set with summaries of
//! WYM's decision units (paired/unpaired counts and similarity statistics
//! from a self-contained cosine-scored unit pipeline). The `hybrid_units`
//! experiment binary compares it against the plain DITTO proxy.

use crate::features;
use crate::BaselineMatcher;
use wym_core::algorithm1::{discover_units, DiscoveryConfig};
use wym_core::pipeline::EmPredictor;
use wym_core::{DecisionUnit, TokenizedRecord};
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_embed::Embedder;
use wym_linalg::vector::{mean, median};
use wym_linalg::Matrix;
use wym_ml::{ClassifierPool, SelectedModel};
use wym_tokenize::Tokenizer;

/// Unit-summary feature block: `[n_paired, n_unpaired_left,
/// n_unpaired_right, paired_ratio, mean sim, median sim, min sim, max sim,
/// mean attr-crossing]`.
pub fn unit_summary_features(record: &TokenizedRecord, units: &[DecisionUnit]) -> Vec<f32> {
    let paired: Vec<&DecisionUnit> = units.iter().filter(|u| u.is_paired()).collect();
    let unpaired_left = units
        .iter()
        .filter(|u| {
            matches!(u, DecisionUnit::Unpaired { side: wym_core::Side::Left, .. })
        })
        .count();
    let unpaired_right = units
        .iter()
        .filter(|u| {
            matches!(u, DecisionUnit::Unpaired { side: wym_core::Side::Right, .. })
        })
        .count();
    let sims: Vec<f32> = paired.iter().map(|u| u.similarity()).collect();
    let crossing = paired
        .iter()
        .filter(|u| match u {
            DecisionUnit::Paired { left, right, .. } => left.attr != right.attr,
            _ => false,
        })
        .count();
    let total = units.len().max(1) as f32;
    let _ = record;
    vec![
        paired.len() as f32,
        unpaired_left as f32,
        unpaired_right as f32,
        paired.len() as f32 / total,
        mean(&sims),
        median(&sims),
        sims.iter().copied().fold(f32::INFINITY, f32::min).clamp(-1.0, 1.0),
        sims.iter().copied().fold(f32::NEG_INFINITY, f32::max).clamp(-1.0, 1.0),
        crossing as f32 / paired.len().max(1) as f32,
    ]
}

/// DITTO-proxy features extended with the decision-unit summary block.
pub struct HybridUnits {
    embedder: Embedder,
    tokenizer: Tokenizer,
    discovery: DiscoveryConfig,
    seed: u64,
    selected: Option<SelectedModel>,
}

impl HybridUnits {
    /// A hybrid matcher with the paper's default discovery thresholds.
    pub fn new(seed: u64) -> Self {
        Self {
            embedder: Embedder::new_static(48, seed),
            tokenizer: Tokenizer::default(),
            discovery: DiscoveryConfig::default(),
            seed,
            selected: None,
        }
    }

    fn features_of(&self, pair: &RecordPair) -> Vec<f32> {
        let mut f = features::cross_features(&self.embedder, &self.tokenizer, pair);
        let record = TokenizedRecord::from_pair(pair, &self.tokenizer, &self.embedder);
        let units = discover_units(&record, &self.discovery);
        f.extend(unit_summary_features(&record, &units));
        f
    }
}

impl EmPredictor for HybridUnits {
    fn proba(&self, pair: &RecordPair) -> f32 {
        let Some(selected) = &self.selected else { return 0.5 };
        let mut x = Matrix::zeros(0, 0);
        x.push_row(&self.features_of(pair));
        selected.predict_proba(&x)[0]
    }
}

impl BaselineMatcher for HybridUnits {
    fn name(&self) -> &'static str {
        "DITTO+units"
    }

    fn fit(&mut self, dataset: &EmDataset, split: &SplitIndices) {
        let build = |idx: &[usize]| {
            let mut x = Matrix::zeros(0, 0);
            let mut y = Vec::with_capacity(idx.len());
            for &i in idx {
                x.push_row(&self.features_of(&dataset.pairs[i]));
                y.push(u8::from(dataset.pairs[i].label));
            }
            (x, y)
        };
        let (x_train, y_train) = build(&split.train);
        let (x_val, y_val) = build(&split.val);
        let pool = ClassifierPool { seed: self.seed, ..ClassifierPool::default() };
        self.selected = Some(pool.fit_select(&x_train, &y_train, &x_val, &y_val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::dataset_and_split;

    #[test]
    fn unit_summary_has_fixed_width() {
        let (dataset, _, _) = dataset_and_split("S-FZ", 40);
        let tokenizer = Tokenizer::default();
        let embedder = Embedder::new_static(32, 0);
        for pair in dataset.pairs.iter().take(5) {
            let record = TokenizedRecord::from_pair(pair, &tokenizer, &embedder);
            let units = discover_units(&record, &DiscoveryConfig::default());
            assert_eq!(unit_summary_features(&record, &units).len(), 9);
        }
    }

    #[test]
    fn unit_summary_separates_match_from_non_match() {
        let (dataset, _, _) = dataset_and_split("S-FZ", 200);
        let tokenizer = Tokenizer::default();
        let embedder = Embedder::new_static(32, 0);
        let ratio = |label: bool| {
            let pairs: Vec<_> = dataset.pairs.iter().filter(|p| p.label == label).collect();
            let mut sum = 0.0f32;
            for p in &pairs {
                let rec = TokenizedRecord::from_pair(p, &tokenizer, &embedder);
                let units = discover_units(&rec, &DiscoveryConfig::default());
                sum += unit_summary_features(&rec, &units)[3]; // paired ratio
            }
            sum / pairs.len() as f32
        };
        assert!(ratio(true) > ratio(false) + 0.2, "{} vs {}", ratio(true), ratio(false));
    }

    #[test]
    fn hybrid_learns() {
        let (dataset, split, test) = dataset_and_split("S-WA", 300);
        let mut h = HybridUnits::new(0);
        h.fit(&dataset, &split);
        let f1 = h.f1_on(&test);
        assert!(f1 > 0.7, "hybrid F1 {f1}");
    }
}
