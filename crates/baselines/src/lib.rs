//! Comparator matchers for Table 3: proxies of DeepMatcher+, AutoML
//! (Hybrid-EM-Adapter), CorDEL and DITTO.
//!
//! The original systems are large Python/GPU stacks; these proxies keep each
//! system's *inductive structure* at laptop scale so that Table 3's
//! relative claim — WYM ≈ DM+/AutoML/CorDEL, DITTO ahead — is reproducible:
//!
//! * [`DmPlus`] — per-attribute similarity summaries feeding a small MLP
//!   (DeepMatcher's attribute-summarize-then-classify design);
//! * [`AutoMl`] — a rich similarity feature set searched over the full
//!   classical model pool (what an AutoML system does with EM-adapter
//!   features);
//! * [`CorDel`] — contrastive shared-vs-unique token signals feeding an MLP
//!   (CorDEL's similarity/dissimilarity decomposition);
//! * [`Ditto`] — the richest cross-pair feature set, the largest MLP, and
//!   DITTO-style training-data augmentation; the strongest proxy by
//!   construction.
//!
//! All proxies implement [`wym_core::pipeline::EmPredictor`], so the
//! explanation experiments (Figure 7) can wrap them with LIME / LEMON.

pub mod automl;
pub mod cordel;
pub mod ditto;
pub mod dm_plus;
pub mod hybrid;
pub mod features;

pub use automl::AutoMl;
pub use cordel::CorDel;
pub use ditto::Ditto;
pub use dm_plus::DmPlus;
pub use hybrid::HybridUnits;

use wym_core::pipeline::EmPredictor;
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_ml::f1_score;

/// A trainable EM baseline.
pub trait BaselineMatcher: EmPredictor {
    /// Display name used in Table 3.
    fn name(&self) -> &'static str;

    /// Fits on the train+validation parts of `split`.
    fn fit(&mut self, dataset: &EmDataset, split: &SplitIndices);

    /// F1 of the match class on a set of labeled pairs.
    fn f1_on(&self, pairs: &[RecordPair]) -> f32 {
        let preds: Vec<u8> = pairs.iter().map(|p| u8::from(self.predict_label(p))).collect();
        let gold: Vec<u8> = pairs.iter().map(|p| u8::from(p.label)).collect();
        f1_score(&preds, &gold)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use wym_data::{magellan, split::paper_split, EmDataset, RecordPair, SplitIndices};

    pub fn dataset_and_split(name: &str, n: usize) -> (EmDataset, SplitIndices, Vec<RecordPair>) {
        let dataset = magellan::generate_by_name(name, 11).unwrap().subsample(n, 0);
        let split = paper_split(&dataset, 0);
        let test: Vec<RecordPair> =
            split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
        (dataset, split, test)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::dataset_and_split;
    use super::*;

    #[test]
    fn all_baselines_beat_the_trivial_predictor() {
        let (dataset, split, test) = dataset_and_split("S-DA", 400);
        // The all-match predictor's F1 equals 2p/(1+p) with p = match rate.
        let p = test.iter().filter(|r| r.label).count() as f32 / test.len() as f32;
        let trivial = 2.0 * p / (1.0 + p);
        let mut models: Vec<Box<dyn BaselineMatcher>> = vec![
            Box::new(DmPlus::new(0)),
            Box::new(AutoMl::new(0)),
            Box::new(CorDel::new(0)),
            Box::new(Ditto::new(0)),
        ];
        for m in &mut models {
            m.fit(&dataset, &split);
            let f1 = m.f1_on(&test);
            assert!(
                f1 > trivial + 0.2,
                "{} F1 {f1} vs trivial {trivial}",
                m.name()
            );
        }
    }

    #[test]
    fn names_match_table3_headers() {
        assert_eq!(DmPlus::new(0).name(), "DM+");
        assert_eq!(AutoMl::new(0).name(), "AutoML");
        assert_eq!(CorDel::new(0).name(), "CorDEL");
        assert_eq!(Ditto::new(0).name(), "DITTO");
    }
}
