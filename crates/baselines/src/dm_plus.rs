//! DeepMatcher+ proxy and the shared MLP-on-features machinery.
//!
//! DeepMatcher summarizes each attribute pair into a similarity
//! representation and classifies the concatenation; DM+ is the tuned
//! ensemble variant reported by the DITTO paper. The proxy keeps that
//! attribute-summarize-then-classify structure: 5 similarity summaries per
//! attribute, a small MLP head.

use crate::features;
use crate::BaselineMatcher;
use wym_core::pipeline::EmPredictor;
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_embed::Embedder;
use wym_linalg::{Matrix, Rng64};
use wym_ml::StandardScaler;
use wym_nn::{Mlp, MlpConfig, TrainConfig};
use wym_tokenize::Tokenizer;

/// Feature extractor signature shared by the MLP-based proxies.
pub(crate) type Extractor = fn(&Embedder, &Tokenizer, &RecordPair) -> Vec<f32>;

/// Shared trainer: features → standardize → MLP with a single logit.
pub(crate) struct MlpBaselineCore {
    pub embedder: Embedder,
    pub tokenizer: Tokenizer,
    pub hidden: Vec<usize>,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
    /// Number of DITTO-style augmented copies per training record.
    pub augment_copies: usize,
    scaler: Option<StandardScaler>,
    mlp: Option<Mlp>,
}

impl MlpBaselineCore {
    pub fn new(hidden: Vec<usize>, seed: u64) -> Self {
        Self {
            embedder: Embedder::new_static(48, seed),
            tokenizer: Tokenizer::default(),
            hidden,
            epochs: 60,
            lr: 5e-3,
            seed,
            augment_copies: 0,
            scaler: None,
            mlp: None,
        }
    }

    /// Random token-drop copy of a pair (DITTO's augmentation operator).
    fn augment(pair: &RecordPair, rng: &mut Rng64) -> RecordPair {
        let drop_side = |values: &[String], rng: &mut Rng64| -> Vec<String> {
            values
                .iter()
                .map(|v| {
                    v.split_whitespace()
                        .filter(|_| !rng.gen_bool(0.15))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        };
        RecordPair {
            id: pair.id,
            label: pair.label,
            left: wym_data::Entity { values: drop_side(&pair.left.values, rng) },
            right: wym_data::Entity { values: drop_side(&pair.right.values, rng) },
        }
    }

    pub fn fit_with(&mut self, dataset: &EmDataset, split: &SplitIndices, extract: Extractor) {
        let mut rng = Rng64::new(self.seed ^ 0xBA5E);
        let mut pairs: Vec<RecordPair> = split
            .train
            .iter()
            .chain(&split.val)
            .map(|&i| dataset.pairs[i].clone())
            .collect();
        if self.augment_copies > 0 {
            let originals = pairs.clone();
            for _ in 0..self.augment_copies {
                pairs.extend(originals.iter().map(|p| Self::augment(p, &mut rng)));
            }
        }
        assert!(!pairs.is_empty(), "empty training split");
        let mut x = Matrix::zeros(0, 0);
        let mut y = Matrix::zeros(0, 1);
        for p in &pairs {
            x.push_row(&extract(&self.embedder, &self.tokenizer, p));
            y.push_row(&[f32::from(u8::from(p.label))]);
        }
        let (scaler, xs) = StandardScaler::fit_transform(&x);
        let mut sizes = vec![xs.cols()];
        sizes.extend(&self.hidden);
        sizes.push(1);
        let mut mlp = Mlp::new(&MlpConfig::classifier(sizes, self.seed));
        wym_nn::train::fit(
            &mut mlp,
            &xs,
            &y,
            &TrainConfig {
                epochs: self.epochs,
                batch_size: 64,
                lr: self.lr,
                seed: self.seed,
                ..TrainConfig::default()
            },
        );
        self.scaler = Some(scaler);
        self.mlp = Some(mlp);
    }

    pub fn proba_with(&self, pair: &RecordPair, extract: Extractor) -> f32 {
        let (Some(scaler), Some(mlp)) = (&self.scaler, &self.mlp) else {
            return 0.5; // unfitted
        };
        let mut x = Matrix::zeros(0, scaler.means().len());
        x.push_row(&extract(&self.embedder, &self.tokenizer, pair));
        mlp.predict(&scaler.transform(&x))[0]
    }
}

/// The DeepMatcher+ proxy.
pub struct DmPlus {
    core: MlpBaselineCore,
}

impl DmPlus {
    /// A DM+ proxy with a 32-unit hidden layer.
    pub fn new(seed: u64) -> Self {
        Self { core: MlpBaselineCore::new(vec![32], seed) }
    }
}

impl EmPredictor for DmPlus {
    fn proba(&self, pair: &RecordPair) -> f32 {
        self.core.proba_with(pair, features::attribute_features)
    }
}

impl BaselineMatcher for DmPlus {
    fn name(&self) -> &'static str {
        "DM+"
    }

    fn fit(&mut self, dataset: &EmDataset, split: &SplitIndices) {
        self.core.fit_with(dataset, split, features::attribute_features);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::dataset_and_split;

    #[test]
    fn learns_a_clean_dataset() {
        let (dataset, split, test) = dataset_and_split("S-DA", 300);
        let mut dm = DmPlus::new(0);
        dm.fit(&dataset, &split);
        let f1 = dm.f1_on(&test);
        assert!(f1 > 0.7, "DM+ F1 {f1}");
    }

    #[test]
    fn unfitted_model_is_uncertain() {
        let (_, _, test) = dataset_and_split("S-FZ", 60);
        let dm = DmPlus::new(0);
        assert_eq!(dm.proba(&test[0]), 0.5);
    }

    #[test]
    fn augmentation_produces_subset_tokens() {
        let (dataset, _, _) = dataset_and_split("S-FZ", 60);
        let mut rng = Rng64::new(1);
        let aug = MlpBaselineCore::augment(&dataset.pairs[0], &mut rng);
        let orig_len: usize =
            dataset.pairs[0].left.values.iter().map(|v| v.split_whitespace().count()).sum();
        let aug_len: usize =
            aug.left.values.iter().map(|v| v.split_whitespace().count()).sum();
        assert!(aug_len <= orig_len);
        assert_eq!(aug.label, dataset.pairs[0].label);
    }
}
