//! CorDEL proxy.
//!
//! CorDEL (Wang et al., ICDM 2020) classifies from an explicit contrastive
//! decomposition: "identify in pairs of entities components of similarity
//! and dissimilarity deriving respectively from shared terms and unique
//! terms" (as the WYM paper summarizes it). The proxy feeds exactly that
//! decomposition — shared/unique counts, ratios, centroid similarities and
//! code agreement — to an MLP head.

use crate::dm_plus::MlpBaselineCore;
use crate::features;
use crate::BaselineMatcher;
use wym_core::pipeline::EmPredictor;
use wym_data::{EmDataset, RecordPair, SplitIndices};
use wym_embed::Embedder;
use wym_tokenize::Tokenizer;

fn extract(embedder: &Embedder, tokenizer: &Tokenizer, pair: &RecordPair) -> Vec<f32> {
    let mut f = features::contrastive_features(embedder, tokenizer, pair);
    // CorDEL also sees attribute-aligned signals through its token streams;
    // give the proxy the attribute jaccards so dirty data doesn't blind it.
    let attr = features::attribute_features(embedder, tokenizer, pair);
    f.extend(attr.chunks(5).map(|c| c[0]));
    f
}

/// The CorDEL proxy.
pub struct CorDel {
    core: MlpBaselineCore,
}

impl CorDel {
    /// A CorDEL proxy with a 32-16 MLP head.
    pub fn new(seed: u64) -> Self {
        Self { core: MlpBaselineCore::new(vec![32, 16], seed) }
    }
}

impl EmPredictor for CorDel {
    fn proba(&self, pair: &RecordPair) -> f32 {
        self.core.proba_with(pair, extract)
    }
}

impl BaselineMatcher for CorDel {
    fn name(&self) -> &'static str {
        "CorDEL"
    }

    fn fit(&mut self, dataset: &EmDataset, split: &SplitIndices) {
        self.core.fit_with(dataset, split, extract);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::dataset_and_split;

    #[test]
    fn learns_a_clean_dataset() {
        let (dataset, split, test) = dataset_and_split("S-DA", 300);
        let mut m = CorDel::new(0);
        m.fit(&dataset, &split);
        let f1 = m.f1_on(&test);
        assert!(f1 > 0.7, "CorDEL F1 {f1}");
    }

    #[test]
    fn proba_in_unit_interval() {
        let (dataset, split, test) = dataset_and_split("S-FZ", 150);
        let mut m = CorDel::new(0);
        m.fit(&dataset, &split);
        for p in &test {
            let v = m.proba(p);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
