//! Figure 7 bench — sufficiency evaluation cost (keep-top-v re-prediction)
//! and the LIME surrogate it is compared against.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::fitted_model;
use wym_explain::sufficiency::{post_hoc_accuracy_tokens, post_hoc_accuracy_wym};
use wym_explain::LimeText;

fn bench(c: &mut Criterion) {
    let (model, _dataset, _split, test) = fitted_model(150);
    let sample: Vec<_> = test.iter().take(5).cloned().collect();
    let lime = LimeText { n_samples: 30, ..LimeText::default() };

    let mut g = c.benchmark_group("figure7_sufficiency");
    g.sample_size(10);
    g.bench_function("posthoc_wym_v3_5recs", |b| {
        b.iter(|| post_hoc_accuracy_wym(&model, &sample, 3))
    });
    g.bench_function("posthoc_lime_v3_5recs", |b| {
        b.iter(|| {
            post_hoc_accuracy_tokens(&model, &sample, 3, |p| lime.explain(&model, p))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
