//! Figure 5 bench — how training cost scales with the training-set size
//! (the learning-curve sweep's unit of work).

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::{bench_config, bench_dataset};
use wym_core::WymModel;
use wym_data::split::paper_split;

fn bench(c: &mut Criterion) {
    let dataset = bench_dataset(400);
    let split = paper_split(&dataset, 0);

    let mut g = c.benchmark_group("figure5_learning_curve");
    g.sample_size(10);
    for n in [60usize, 120, 240] {
        let mut sub = split.clone();
        sub.train.truncate(n);
        g.bench_function(&format!("fit_train_{n}"), |b| {
            b.iter(|| WymModel::fit(&dataset, &sub, bench_config()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
