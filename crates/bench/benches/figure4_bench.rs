//! Figure 4 bench — decision-unit discovery (Algorithm 1) throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::{bench_dataset, bench_dataset_hard};
use wym_core::{discover_units, DiscoveryConfig, TokenizedRecord};
use wym_embed::Embedder;
use wym_tokenize::Tokenizer;

fn bench(c: &mut Criterion) {
    let tokenizer = Tokenizer::default();
    let embedder = Embedder::new_static(64, 0);
    let cfg = DiscoveryConfig::default();

    let mut g = c.benchmark_group("figure4_unit_discovery");
    for (label, dataset) in
        [("restaurants", bench_dataset(100)), ("electronics", bench_dataset_hard(100))]
    {
        let records: Vec<TokenizedRecord> = dataset
            .pairs
            .iter()
            .map(|p| TokenizedRecord::from_pair(p, &tokenizer, &embedder))
            .collect();
        g.bench_function(&format!("discover_100_{label}"), |b| {
            b.iter(|| {
                records
                    .iter()
                    .map(|r| discover_units(r, &cfg).len())
                    .sum::<usize>()
            })
        });
        g.bench_function(&format!("tokenize_embed_100_{label}"), |b| {
            b.iter(|| {
                dataset
                    .pairs
                    .iter()
                    .map(|p| TokenizedRecord::from_pair(p, &tokenizer, &embedder).left.token_count())
                    .sum::<usize>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
