//! Table 2 bench — synthetic Magellan dataset generation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use wym_data::magellan;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_generation");
    g.sample_size(10);
    for name in ["S-FZ", "S-BR"] {
        g.bench_function(&format!("generate_{name}"), |b| {
            b.iter(|| magellan::generate_by_name(name, 42).unwrap())
        });
    }
    // Large dataset generated once then subsampled (the harness pattern).
    g.bench_function("generate_subsample_S-WA_800", |b| {
        b.iter_batched(
            || (),
            |_| magellan::generate_by_name("S-WA", 42).unwrap().subsample(800, 0),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
