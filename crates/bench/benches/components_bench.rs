//! Component microbenches (§5.3's breakdown at the operation level):
//! stable marriage, relevance scoring, feature engineering, impacts, and
//! the substrate hot loops (matmul, cosine, Jaro–Winkler, tokenizer).

use criterion::{criterion_group, criterion_main, Criterion};

// The bench binary runs with the tracking allocator installed — exactly how
// the shipped binaries run — so the `prof` group below measures the real
// cost of the wrapper, not a simulation of it.
wym_obs::install_tracking_alloc!();
use wym_bench::{bench_dataset_hard, fitted_model};
use wym_core::algorithm1::{
    discover_units, discover_units_cached, discover_units_reference, DiscoveryConfig,
};
use wym_core::features::{featurize, full_specs};
use wym_core::pairing::{get_sm_pairs, get_sm_pairs_cached, PairingSim, SimMatrix};
use wym_core::TokenizedRecord;
use wym_embed::Embedder;
use wym_linalg::vector::cosine;
use wym_linalg::{Matrix, Rng64};
use wym_strsim::jaro_winkler;
use wym_tokenize::Tokenizer;

fn bench(c: &mut Criterion) {
    let mut rng = Rng64::new(0);

    // Substrate hot loops.
    {
        let a = Matrix::randn(64, 128, 1.0, &mut rng);
        let b = Matrix::randn(128, 300, 1.0, &mut rng);
        c.bench_function("linalg_matmul_64x128x300", |bch| bch.iter(|| a.matmul(&b)));
        let va: Vec<f32> = (0..64).map(|_| rng.normal() as f32).collect();
        let vb: Vec<f32> = (0..64).map(|_| rng.normal() as f32).collect();
        c.bench_function("vector_cosine_64", |bch| bch.iter(|| cosine(&va, &vb)));
        c.bench_function("strsim_jaro_winkler", |bch| {
            bch.iter(|| jaro_winkler("exchange server external", "exch srvr external"))
        });
        let tok = Tokenizer::default();
        c.bench_function("tokenize_product_title", |bch| {
            bch.iter(|| tok.tokenize("sony digital camera with lens kit dslra200w 37.63"))
        });
        let emb = Embedder::new_static(64, 0);
        c.bench_function("embed_token", |bch| bch.iter(|| emb.embed_token_static("dslra200w")));
    }

    // Kernel-layer dispatch: every implementation the host supports —
    // scalar always, plus AVX2+FMA / AVX-512 / NEON as the CPU exposes
    // them — on the same inputs, labeled by dispatch name. All variants
    // return bit-identical results; only the speed differs. The historical
    // acceptance target (best ≥2x scalar on dot/cosine at d=300) reads off
    // the `_scalar`-suffixed vs best-impl entries.
    {
        use wym_linalg::kernels::{
            available, axpy_with, cosine_with, dist_sq_with, dot_i8_with, dot_with,
        };
        let mut g = c.benchmark_group("kernels");
        for &d in &[64usize, 300] {
            let a: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            let b: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            let qa: Vec<i8> = (0..d).map(|i| ((i * 37) % 255) as i8).collect();
            let qb: Vec<i8> = (0..d).map(|i| ((i * 91) % 255) as i8).collect();
            for imp in available() {
                let n = imp.name();
                g.bench_function(&format!("dot_{d}_{n}"), |bch| {
                    bch.iter(|| dot_with(imp, &a, &b))
                });
                g.bench_function(&format!("cosine_{d}_{n}"), |bch| {
                    bch.iter(|| cosine_with(imp, &a, &b))
                });
                g.bench_function(&format!("dist_sq_{d}_{n}"), |bch| {
                    bch.iter(|| dist_sq_with(imp, &a, &b))
                });
                let mut y = b.clone();
                g.bench_function(&format!("axpy_{d}_{n}"), |bch| {
                    bch.iter(|| axpy_with(imp, 0.37, &a, &mut y))
                });
                g.bench_function(&format!("dot_i8_{d}_{n}"), |bch| {
                    bch.iter(|| dot_i8_with(imp, &qa, &qb))
                });
            }
        }
        // The quantized-pairing kernels: max-reduce + row quantization (the
        // per-build cost of the i8 screen) and the batched row-block dot
        // (its per-entry cost), one query against 64 contiguous rows.
        use wym_linalg::kernels::{dot_i8_batch_with, max_abs_with, quantize_i8_with};
        for &d in &[64usize, 300] {
            let v: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            let qa: Vec<i8> = (0..d).map(|i| ((i * 37) % 255) as i8).collect();
            let block: Vec<i8> = (0..64 * d).map(|i| ((i * 53) % 255) as i8).collect();
            for imp in available() {
                let n = imp.name();
                g.bench_function(&format!("max_abs_{d}_{n}"), |bch| {
                    bch.iter(|| max_abs_with(imp, &v))
                });
                let mut q = vec![0i8; d];
                g.bench_function(&format!("quantize_i8_{d}_{n}"), |bch| {
                    bch.iter(|| quantize_i8_with(imp, &v, 127.0, &mut q))
                });
                let mut dots = vec![0i32; 64];
                g.bench_function(&format!("dot_i8_batch64_{d}_{n}"), |bch| {
                    bch.iter(|| dot_i8_batch_with(imp, &qa, &block, &mut dots))
                });
            }
        }
        g.finish();
    }

    // Stable marriage on a realistic record.
    {
        let dataset = bench_dataset_hard(10);
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(64, 0);
        let rec = TokenizedRecord::from_pair(&dataset.pairs[0], &tok, &emb);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        c.bench_function("pairing_stable_marriage", |bch| {
            bch.iter(|| get_sm_pairs(&rec, &left, &right, 0.6, PairingSim::Embedding, false))
        });
    }

    // Fused tokenize→embed: the arena path with matrix recycling
    // (steady-state serving — allocation-free after warmup) against the
    // nested alloc-per-record reference it is bit-identical to. Both embed
    // the same pre-tokenized 10-record workload.
    {
        let dataset = bench_dataset_hard(10);
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(64, 0);
        let token_lists: Vec<(Vec<Vec<String>>, Vec<Vec<String>>)> = dataset
            .pairs
            .iter()
            .map(|p| {
                (
                    tok.tokenize_attributes(&p.left.values),
                    tok.tokenize_attributes(&p.right.values),
                )
            })
            .collect();
        let mut g = c.benchmark_group("fused_embed");
        g.bench_function("embed_swa10_reference_alloc", |bch| {
            bch.iter(|| {
                token_lists
                    .iter()
                    .map(|(lt, rt)| emb.embed_entity(lt).len() + emb.embed_entity(rt).len())
                    .sum::<usize>()
            })
        });
        g.bench_function("embed_swa10_fused_arena", |bch| {
            bch.iter(|| {
                token_lists
                    .iter()
                    .map(|(lt, rt)| {
                        let l = emb.embed_entity_fused(lt);
                        let r = emb.embed_entity_fused(rt);
                        let n = l.n_rows() + r.n_rows();
                        wym_embed::recycle(l);
                        wym_embed::recycle(r);
                        n
                    })
                    .sum::<usize>()
            })
        });
        g.finish();
    }

    // Int8-screened pairing: the similarity-matrix fill with the i8
    // screening pass (the production configuration under the default 0.6
    // discovery floor) against the pure-f32 fill it is observationally
    // identical to.
    {
        let dataset = bench_dataset_hard(10);
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(64, 0);
        let recs: Vec<TokenizedRecord> = dataset
            .pairs
            .iter()
            .map(|p| TokenizedRecord::from_pair(p, &tok, &emb))
            .collect();
        let mut g = c.benchmark_group("simmatrix_i8");
        g.bench_function("build_swa10_f32", |bch| {
            bch.iter(|| {
                recs.iter()
                    .map(|r| {
                        SimMatrix::build_tuned(r, PairingSim::Embedding, false, None, 1).entries()
                    })
                    .sum::<usize>()
            })
        });
        g.bench_function("build_swa10_i8_screened", |bch| {
            bch.iter(|| {
                recs.iter()
                    .map(|r| {
                        SimMatrix::build_tuned(r, PairingSim::Embedding, false, Some(0.6), 1)
                            .entries()
                    })
                    .sum::<usize>()
            })
        });
        // The regime `worth_i8_screening` actually routes to the screen in
        // production: one long-description record (256 tokens/side) at
        // fastText dimensionality. The small-record entries above stay for
        // the trajectory but production now fills those with pure f32.
        let stress_side = |n: usize, dim: usize, seed: u64| {
            let mut rng = Rng64::new(seed);
            let rows: Vec<Vec<f32>> = (0..n)
                .map(|_| {
                    let mut v: Vec<f32> = (0..dim).map(|_| rng.normal() as f32).collect();
                    wym_linalg::vector::normalize(&mut v);
                    v
                })
                .collect();
            wym_core::record::EntityView {
                tokens: vec![(0..n).map(|i| format!("t{i}")).collect()],
                embeds: wym_embed::EmbedMatrix::from_nested(&[rows], dim),
            }
        };
        let stress = TokenizedRecord {
            id: 0,
            left: stress_side(256, 300, 1),
            right: stress_side(256, 300, 2),
            label: None,
        };
        g.bench_function("build_stress256_d300_f32", |bch| {
            bch.iter(|| {
                SimMatrix::build_tuned(&stress, PairingSim::Embedding, false, None, 1).entries()
            })
        });
        g.bench_function("build_stress256_d300_i8_screened", |bch| {
            bch.iter(|| {
                SimMatrix::build_tuned(&stress, PairingSim::Embedding, false, Some(0.6), 1)
                    .entries()
            })
        });
        g.finish();
    }

    // This PR's perf targets: similarity caching in discovery, blocked GEMM.
    {
        let mut g = c.benchmark_group("simcache");
        let dataset = bench_dataset_hard(10);
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(64, 0);
        let rec = TokenizedRecord::from_pair(&dataset.pairs[0], &tok, &emb);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        let matrix = SimMatrix::build(&rec, PairingSim::Embedding);
        let config = DiscoveryConfig::default();
        g.bench_function("sm_pairs_uncached", |bch| {
            bch.iter(|| get_sm_pairs(&rec, &left, &right, 0.6, PairingSim::Embedding, false))
        });
        g.bench_function("sm_pairs_cached", |bch| {
            bch.iter(|| get_sm_pairs_cached(&matrix, &left, &right, 0.6, false))
        });
        // Full discovery over the 10-record S-WA workload: the shipped
        // cached path, the prebuilt-matrix variant, and the per-lookup
        // reference (the pre-caching implementation) for the speedup ratio.
        let recs: Vec<TokenizedRecord> = dataset
            .pairs
            .iter()
            .map(|p| TokenizedRecord::from_pair(p, &tok, &emb))
            .collect();
        g.bench_function("simmatrix_build_swa10", |bch| {
            bch.iter(|| {
                recs.iter()
                    .map(|r| SimMatrix::build(r, config.sim).sim(
                        wym_core::record::TokenRef { attr: 0, pos: 0 },
                        wym_core::record::TokenRef { attr: 0, pos: 0 },
                        false,
                    ))
                    .sum::<f32>()
            })
        });
        g.bench_function("discover_units_swa10", |bch| {
            bch.iter(|| recs.iter().map(|r| discover_units(r, &config).len()).sum::<usize>())
        });
        g.bench_function("discover_units_swa10_prebuilt", |bch| {
            bch.iter(|| {
                recs.iter()
                    .map(|r| {
                        let m = SimMatrix::build(r, config.sim);
                        discover_units_cached(r, &m, &config).len()
                    })
                    .sum::<usize>()
            })
        });
        g.bench_function("discover_units_swa10_reference", |bch| {
            bch.iter(|| {
                recs.iter().map(|r| discover_units_reference(r, &config).len()).sum::<usize>()
            })
        });
        g.finish();

        // The two GEMM shapes the relevance scorer hits hardest: the input
        // layer (batch 256, 300 -> 64) and the hidden layer (batch 256,
        // 64 -> 32). The `ikj_axpy` entries reproduce the pre-blocking
        // kernel (one axpy per scalar of A) as the before/after reference.
        let ikj_axpy = |a: &Matrix, b: &Matrix| -> Matrix {
            let mut out = Matrix::zeros(a.rows(), b.cols());
            for i in 0..a.rows() {
                for (k, &v) in a.row(i).iter().enumerate() {
                    if v != 0.0 {
                        wym_linalg::vector::axpy(v, b.row(k), out.row_mut(i));
                    }
                }
            }
            out
        };
        let mut g = c.benchmark_group("gemm");
        let a = Matrix::randn(256, 300, 1.0, &mut rng);
        let b = Matrix::randn(300, 64, 1.0, &mut rng);
        g.bench_function("matmul_256x300x64", |bch| bch.iter(|| a.matmul(&b)));
        g.bench_function("matmul_256x300x64_ikj_axpy", |bch| bch.iter(|| ikj_axpy(&a, &b)));
        let a2 = Matrix::randn(256, 64, 1.0, &mut rng);
        let b2 = Matrix::randn(64, 32, 1.0, &mut rng);
        g.bench_function("matmul_256x64x32", |bch| bch.iter(|| a2.matmul(&b2)));
        g.bench_function("matmul_256x64x32_ikj_axpy", |bch| bch.iter(|| ikj_axpy(&a2, &b2)));
        g.finish();
    }

    // Observability guard: full discovery with recording disabled (the
    // default no-op path) vs enabled (traced). The disabled entry must stay
    // within noise of `simcache/discover_units_swa10`; the traced entry
    // bounds the cost a `--trace` run adds per record.
    {
        let dataset = bench_dataset_hard(10);
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(64, 0);
        let recs: Vec<TokenizedRecord> = dataset
            .pairs
            .iter()
            .map(|p| TokenizedRecord::from_pair(p, &tok, &emb))
            .collect();
        let config = DiscoveryConfig::default();
        let mut g = c.benchmark_group("obs");
        g.bench_function("discover_units_swa10_noop", |bch| {
            let rec = std::sync::Arc::new(wym_obs::Recorder::new());
            wym_obs::with_recorder(rec, || {
                bch.iter(|| {
                    recs.iter().map(|r| discover_units(r, &config).len()).sum::<usize>()
                })
            });
        });
        g.bench_function("discover_units_swa10_traced", |bch| {
            let rec = std::sync::Arc::new(wym_obs::Recorder::new_enabled());
            wym_obs::with_recorder(rec, || {
                bch.iter(|| {
                    recs.iter().map(|r| discover_units(r, &config).len()).sum::<usize>()
                })
            });
        });
        // Flight-recorder guard (DESIGN.md §15). `_off` is the acceptance
        // pin: with no flight installed, a span+counter round trip must
        // stay within noise of the plain disabled-recorder path — the ring
        // check is one TLS read plus one relaxed atomic load. `_on` bounds
        // what the always-on rings add per event when armed.
        let span_churn = || {
            let _s = wym_obs::span("bench_flight_span");
            wym_obs::counter_add("bench.flight.counter", 1);
        };
        g.bench_function("span_counter_flight_off", |bch| bch.iter(span_churn));
        g.bench_function("span_counter_flight_on", |bch| {
            let flight = std::sync::Arc::new(wym_obs::Flight::new_enabled(4096));
            wym_obs::ring::with_flight(flight, || bch.iter(span_churn));
        });
        g.finish();
    }

    // Memory-profiler guard: an allocation-heavy workload under the three
    // allocator states. `_disabled` is the acceptance pin — the tracking
    // wrapper with profiling off (one relaxed atomic load per allocator
    // call) must stay within noise of what plain System costs; `_enabled`
    // and `_in_span` bound what `--profile-mem` adds per allocation.
    {
        let tok = Tokenizer::default();
        let churn = |tok: &Tokenizer| {
            // Tokenization is the pipeline's allocation churn in miniature:
            // per-token Strings plus the collecting Vec.
            tok.tokenize("sony digital camera with lens kit dslra200w 37.63").len()
        };
        let mut g = c.benchmark_group("prof");
        wym_obs::prof::set_enabled(false);
        g.bench_function("tokenize_alloc_disabled", |bch| bch.iter(|| churn(&tok)));
        wym_obs::prof::set_enabled(true);
        g.bench_function("tokenize_alloc_enabled", |bch| bch.iter(|| churn(&tok)));
        g.bench_function("tokenize_alloc_in_span", |bch| {
            let rec = std::sync::Arc::new(wym_obs::Recorder::new_enabled());
            wym_obs::with_recorder(rec, || {
                let _s = wym_obs::span("bench");
                bch.iter(|| churn(&tok))
            });
        });
        wym_obs::prof::set_enabled(false);
        g.finish();
    }

    // Blocking at scale (DESIGN.md §11), on a 5k-record slice of the
    // synthetic dedup workload: index build, the posting-walk lexical query
    // pass, the int8-quantized ANN scan, and the exact f32 re-score of one
    // survivor set. `dot_i8` vs its scalar twin pins the integer-kernel
    // speedup the quantized scan rides on.
    {
        use wym_block::{index::TokenIndex, AnnConfig, AnnIndex, SynthConfig};
        use wym_linalg::kernels::{cosine_i8_with, cosine_with, detect_best, KernelImpl};
        let table = wym_block::generate(&SynthConfig {
            n_records: 5_000,
            dup_frac: 0.2,
            seed: 5,
            medium_vocab: 1_000,
        });
        let texts: Vec<String> =
            table.records.iter().map(wym_data::Entity::full_text).collect();
        let best = detect_best();
        let mut g = c.benchmark_group("blocking");
        g.sample_size(10);
        g.bench_function("index_build_5k", |bch| {
            bch.iter(|| TokenIndex::build(&texts, 0.01, 16, 1))
        });
        let index = TokenIndex::build(&texts, 0.01, 16, 1);
        g.bench_function("lexical_top_candidates_5k", |bch| {
            bch.iter(|| index.top_candidates(10, 1))
        });
        let ann_config = AnnConfig::default();
        g.bench_function("ann_index_build_5k", |bch| {
            bch.iter(|| {
                AnnIndex::build(index.vocab(), index.all_record_tokens(), &ann_config, best, 1)
            })
        });
        let ann = AnnIndex::build(index.vocab(), index.all_record_tokens(), &ann_config, best, 1);
        g.bench_function("ann_quantized_scan_5k", |bch| {
            bch.iter(|| {
                (0..1000u32).map(|qi| ann.quantized_survivors(qi).len()).sum::<usize>()
            })
        });
        g.bench_function("ann_exact_rescore_1k", |bch| {
            bch.iter(|| {
                (0..1000usize)
                    .map(|i| ann.exact_cosine(i, (i + 1) % 5_000, best))
                    .sum::<f32>()
            })
        });
        let qt = ann.quantized();
        g.bench_function("cosine_i8_64", |bch| {
            bch.iter(|| cosine_i8_with(best, qt.row(0), qt.row(1), qt.scale(0), qt.scale(1)))
        });
        g.bench_function("cosine_i8_64_scalar", |bch| {
            bch.iter(|| {
                cosine_i8_with(KernelImpl::Scalar, qt.row(0), qt.row(1), qt.scale(0), qt.scale(1))
            })
        });
        g.bench_function("cosine_f32_64", |bch| {
            bch.iter(|| cosine_with(best, ann.vector(0), ann.vector(1)))
        });
        g.finish();
    }

    // Scoring + featurization + impacts on a fitted model.
    {
        let (model, _d, _s, test) = fitted_model(150);
        let proc = model.process(&test[0]);
        c.bench_function("scorer_score_units", |bch| {
            bch.iter(|| model.scorer().score_units(&proc.record, &proc.units))
        });
        let specs = full_specs(5);
        c.bench_function("features_featurize", |bch| {
            bch.iter(|| featurize(&specs, &proc.units, &proc.relevances))
        });
        c.bench_function("matcher_impacts", |bch| {
            bch.iter(|| model.matcher().impacts(&proc.units, &proc.relevances))
        });
        c.bench_function("pipeline_process_one", |bch| bch.iter(|| model.process(&test[0])));
        c.bench_function("pipeline_explain_one", |bch| bch.iter(|| model.explain(&test[0])));
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
