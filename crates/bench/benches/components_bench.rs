//! Component microbenches (§5.3's breakdown at the operation level):
//! stable marriage, relevance scoring, feature engineering, impacts, and
//! the substrate hot loops (matmul, cosine, Jaro–Winkler, tokenizer).

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::{bench_dataset_hard, fitted_model};
use wym_core::features::{featurize, full_specs};
use wym_core::pairing::{get_sm_pairs, PairingSim};
use wym_core::TokenizedRecord;
use wym_embed::Embedder;
use wym_linalg::vector::cosine;
use wym_linalg::{Matrix, Rng64};
use wym_strsim::jaro_winkler;
use wym_tokenize::Tokenizer;

fn bench(c: &mut Criterion) {
    let mut rng = Rng64::new(0);

    // Substrate hot loops.
    {
        let a = Matrix::randn(64, 128, 1.0, &mut rng);
        let b = Matrix::randn(128, 300, 1.0, &mut rng);
        c.bench_function("linalg_matmul_64x128x300", |bch| bch.iter(|| a.matmul(&b)));
        let va: Vec<f32> = (0..64).map(|_| rng.normal() as f32).collect();
        let vb: Vec<f32> = (0..64).map(|_| rng.normal() as f32).collect();
        c.bench_function("vector_cosine_64", |bch| bch.iter(|| cosine(&va, &vb)));
        c.bench_function("strsim_jaro_winkler", |bch| {
            bch.iter(|| jaro_winkler("exchange server external", "exch srvr external"))
        });
        let tok = Tokenizer::default();
        c.bench_function("tokenize_product_title", |bch| {
            bch.iter(|| tok.tokenize("sony digital camera with lens kit dslra200w 37.63"))
        });
        let emb = Embedder::new_static(64, 0);
        c.bench_function("embed_token", |bch| bch.iter(|| emb.embed_token_static("dslra200w")));
    }

    // Stable marriage on a realistic record.
    {
        let dataset = bench_dataset_hard(10);
        let tok = Tokenizer::default();
        let emb = Embedder::new_static(64, 0);
        let rec = TokenizedRecord::from_pair(&dataset.pairs[0], &tok, &emb);
        let left = rec.left.all_refs();
        let right = rec.right.all_refs();
        c.bench_function("pairing_stable_marriage", |bch| {
            bch.iter(|| get_sm_pairs(&rec, &left, &right, 0.6, PairingSim::Embedding, false))
        });
    }

    // Scoring + featurization + impacts on a fitted model.
    {
        let (model, _d, _s, test) = fitted_model(150);
        let proc = model.process(&test[0]);
        c.bench_function("scorer_score_units", |bch| {
            bch.iter(|| model.scorer().score_units(&proc.record, &proc.units))
        });
        let specs = full_specs(5);
        c.bench_function("features_featurize", |bch| {
            bch.iter(|| featurize(&specs, &proc.units, &proc.relevances))
        });
        c.bench_function("matcher_impacts", |bch| {
            bch.iter(|| model.matcher().impacts(&proc.units, &proc.relevances))
        });
        c.bench_function("pipeline_process_one", |bch| bch.iter(|| model.process(&test[0])));
        c.bench_function("pipeline_explain_one", |bch| bch.iter(|| model.explain(&test[0])));
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
