//! Table 3 bench — end-to-end fit and evaluation cost of WYM and the
//! strongest comparator proxy on a small dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_baselines::{BaselineMatcher, Ditto};
use wym_bench::{bench_config, bench_dataset};
use wym_core::WymModel;
use wym_data::split::paper_split;

fn bench(c: &mut Criterion) {
    let dataset = bench_dataset(150);
    let split = paper_split(&dataset, 0);
    let test: Vec<_> = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();

    let mut g = c.benchmark_group("table3_matchers");
    g.sample_size(10);
    g.bench_function("wym_fit_150", |b| {
        b.iter(|| WymModel::fit(&dataset, &split, bench_config()))
    });
    g.bench_function("ditto_fit_150", |b| {
        b.iter(|| {
            let mut d = Ditto::new(0);
            d.fit(&dataset, &split);
            d
        })
    });
    let model = WymModel::fit(&dataset, &split, bench_config());
    g.bench_function("wym_f1_eval", |b| b.iter(|| model.f1_on(&test)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
