//! Table 5 bench — per-classifier training cost on WYM's engineered
//! feature matrix.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::fitted_model;
use wym_core::features::featurize;
use wym_linalg::Matrix;
use wym_ml::{ClassifierKind, StandardScaler};

fn bench(c: &mut Criterion) {
    let (model, dataset, split, _) = fitted_model(150);
    let specs = model.matcher().specs().to_vec();
    let mut x = Matrix::zeros(0, specs.len());
    let mut y: Vec<u8> = Vec::new();
    for &i in split.train.iter().chain(&split.val) {
        let proc = model.process(&dataset.pairs[i]);
        x.push_row(&featurize(&specs, &proc.units, &proc.relevances));
        y.push(u8::from(dataset.pairs[i].label));
    }
    let (_, xs) = StandardScaler::fit_transform(&x);

    let mut g = c.benchmark_group("table5_classifiers");
    g.sample_size(10);
    for kind in [
        ClassifierKind::LogisticRegression,
        ClassifierKind::DecisionTree,
        ClassifierKind::RandomForest,
        ClassifierKind::GradientBoosting,
        ClassifierKind::Knn,
    ] {
        g.bench_function(&format!("fit_{}", kind.short_name()), |b| {
            b.iter(|| {
                let mut m = kind.build(0);
                m.fit(&xs, &y);
                m.predict(&xs)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
