//! Figure 8 bench — MoRF/LeRF/Random unit-removal perturbation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::fitted_model;
use wym_explain::perturb::{f1_after_removal, perturb_record, RemovalStrategy};

fn bench(c: &mut Criterion) {
    let (model, _dataset, _split, test) = fitted_model(150);
    let sample: Vec<_> = test.iter().take(10).cloned().collect();

    let mut g = c.benchmark_group("figure8_perturbation");
    g.sample_size(10);
    for strategy in [RemovalStrategy::MoRF, RemovalStrategy::LeRF, RemovalStrategy::Random] {
        g.bench_function(&format!("perturb_one_{}", strategy.as_str()), |b| {
            b.iter(|| perturb_record(&model, &sample[0], 3, strategy, 0))
        });
    }
    g.bench_function("f1_after_removal_10recs", |b| {
        b.iter(|| f1_after_removal(&model, &sample, 3, RemovalStrategy::MoRF, 0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
