//! Figure 6 bench — explanation generation and Pareto-conciseness analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::fitted_model;
use wym_explain::pareto::{cumulative_impact_curve, mean_shares};

fn bench(c: &mut Criterion) {
    let (model, _dataset, _split, test) = fitted_model(200);
    let sample: Vec<_> = test.iter().take(30).cloned().collect();

    let mut g = c.benchmark_group("figure6_conciseness");
    g.sample_size(10);
    g.bench_function("explain_30_records", |b| {
        b.iter(|| sample.iter().map(|p| model.explain(p).units.len()).sum::<usize>())
    });
    let explanations: Vec<_> = sample.iter().map(|p| model.explain(p)).collect();
    g.bench_function("pareto_curves_30", |b| {
        b.iter(|| {
            explanations
                .iter()
                .map(|e| cumulative_impact_curve(e).len())
                .sum::<usize>()
        })
    });
    g.bench_function("mean_shares", |b| {
        b.iter(|| mean_shares(&explanations, &[0.03, 0.05, 0.1, 0.2, 0.5]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
