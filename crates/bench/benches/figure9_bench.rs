//! Figure 9 bench — Landmark explanation generation and WYM-impact
//! correlation cost per record.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::fitted_model;
use wym_explain::correlation::unit_correlation;
use wym_explain::Landmark;

fn bench(c: &mut Criterion) {
    let (model, _dataset, _split, test) = fitted_model(150);
    let pair = test[0].clone();
    let landmark = Landmark { n_perturbations: 25, ..Landmark::default() };

    let mut g = c.benchmark_group("figure9_landmark");
    g.sample_size(10);
    g.bench_function("landmark_explain_one", |b| {
        b.iter(|| landmark.explain(&model, &pair).len())
    });
    let atts = landmark.explain(&model, &pair);
    g.bench_function("unit_correlation_one", |b| {
        b.iter(|| unit_correlation(&model, &pair, &atts))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
