//! Table 4 bench — cost of the ablation variants of the decision-unit
//! generator and the scorer.

use criterion::{criterion_group, criterion_main, Criterion};
use wym_bench::{bench_config, bench_dataset};
use wym_core::pairing::PairingSim;
use wym_core::scorer::ScorerKind;
use wym_core::WymModel;
use wym_data::split::paper_split;

fn bench(c: &mut Criterion) {
    let dataset = bench_dataset(150);
    let split = paper_split(&dataset, 0);

    let mut g = c.benchmark_group("table4_ablations");
    g.sample_size(10);
    g.bench_function("generator_jaro_winkler", |b| {
        b.iter(|| {
            let mut cfg = bench_config();
            cfg.discovery.sim = PairingSim::JaroWinkler;
            cfg.discovery.theta = 0.84;
            WymModel::fit(&dataset, &split, cfg)
        })
    });
    g.bench_function("scorer_binary", |b| {
        b.iter(|| {
            let mut cfg = bench_config();
            cfg.scorer.kind = ScorerKind::Binary;
            WymModel::fit(&dataset, &split, cfg)
        })
    });
    g.bench_function("matcher_simplified_features", |b| {
        b.iter(|| {
            let mut cfg = bench_config();
            cfg.matcher.simplified_features = true;
            WymModel::fit(&dataset, &split, cfg)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
