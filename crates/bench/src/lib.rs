//! Shared fixtures for the Criterion benchmarks.
//!
//! Every paper table/figure has a bench target (`benches/<id>_bench.rs`)
//! that measures the core computation behind it on a scaled-down workload,
//! so `cargo bench` both exercises the full pipeline and tracks performance
//! regressions. The full-scale numbers come from the `wym-experiments`
//! binaries, not from these benches.

use wym_core::{WymConfig, WymModel};
use wym_data::{magellan, split::paper_split, EmDataset, RecordPair, SplitIndices};
use wym_embed::EmbedderKind;
use wym_ml::ClassifierKind;
use wym_nn::TrainConfig;

/// A small benchmark dataset (S-FZ subsampled).
pub fn bench_dataset(n: usize) -> EmDataset {
    magellan::generate_by_name("S-FZ", 42).expect("known dataset").subsample(n, 0)
}

/// A harder benchmark dataset (S-WA subsampled), for unit-heavy workloads.
pub fn bench_dataset_hard(n: usize) -> EmDataset {
    magellan::generate_by_name("S-WA", 42).expect("known dataset").subsample(n, 0)
}

/// A fast WYM configuration for fit benchmarks.
pub fn bench_config() -> WymConfig {
    let mut cfg =
        WymConfig { embed_dim: 32, embedder_kind: EmbedderKind::Static, ..WymConfig::default() };
    cfg.scorer.train =
        TrainConfig { epochs: 4, batch_size: 128, lr: 2e-3, ..TrainConfig::default() };
    cfg.matcher.kinds =
        vec![ClassifierKind::LogisticRegression, ClassifierKind::GradientBoosting];
    cfg
}

/// A fitted model plus its split and test pairs, ready to be benchmarked.
pub fn fitted_model(n: usize) -> (WymModel, EmDataset, SplitIndices, Vec<RecordPair>) {
    let dataset = bench_dataset(n);
    let split = paper_split(&dataset, 0);
    let model = WymModel::fit(&dataset, &split, bench_config());
    let test = split.test.iter().map(|&i| dataset.pairs[i].clone()).collect();
    (model, dataset, split, test)
}
