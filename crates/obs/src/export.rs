//! Prometheus text-format exposition.
//!
//! [`prometheus_text`] renders a [`Snapshot`] in the Prometheus text
//! exposition format (version 0.0.4) — the lingua franca every scraper,
//! agent, and dashboard already speaks — so a resident WYM process only
//! needs to serve this string on an HTTP endpoint to be monitorable.
//!
//! Mapping:
//!
//! * counters → `wym_<name>_total` (type `counter`);
//! * gauges → `wym_<name>` (type `gauge`);
//! * histograms → `wym_<name>_bucket{le="…"}` with cumulative counts and
//!   the canonical `le="+Inf"` terminal, plus `_sum` / `_count`;
//! * spans → `wym_span_seconds_sum{path="…"}` / `wym_span_seconds_count`
//!   (wall time converted to seconds, the Prometheus base unit);
//! * memory (when profiled) → `wym_mem_live_bytes` / `wym_mem_peak_bytes`.
//!
//! Metric names sanitize to `[a-zA-Z0-9_]` (dots become underscores);
//! label values escape backslash, quote, and newline per the format spec.
//! Output order follows the snapshot's sorted maps, so the exposition is
//! deterministic like every other serialization in this crate.

use crate::recorder::Snapshot;

/// Renders `snap` in the Prometheus text exposition format.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();

    for (name, v) in &snap.counters {
        let metric = format!("wym_{}_total", sanitize(name));
        type_line(&mut out, &metric, "counter");
        out.push_str(&format!("{metric} {v}\n"));
    }

    for (name, v) in &snap.gauges {
        let metric = format!("wym_{}", sanitize(name));
        type_line(&mut out, &metric, "gauge");
        out.push_str(&format!("{metric} {}\n", fmt_f64(*v)));
    }

    for (name, h) in &snap.histograms {
        let metric = format!("wym_{}", sanitize(name));
        type_line(&mut out, &metric, "histogram");
        let mut cum = 0u64;
        for (i, &c) in h.counts().iter().enumerate() {
            cum += c;
            let le = if i < h.bounds().len() {
                fmt_f64(h.bounds()[i])
            } else {
                "+Inf".to_string()
            };
            out.push_str(&format!("{metric}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{metric}_sum {}\n", fmt_f64(h.sum())));
        out.push_str(&format!("{metric}_count {}\n", h.count()));
    }

    if !snap.spans.is_empty() {
        type_line(&mut out, "wym_span_seconds", "summary");
        for s in &snap.spans {
            let path = escape_label(&s.path);
            out.push_str(&format!(
                "wym_span_seconds_sum{{path=\"{path}\"}} {}\n",
                fmt_f64(s.total_ns as f64 / 1e9)
            ));
            out.push_str(&format!(
                "wym_span_seconds_count{{path=\"{path}\"}} {}\n",
                s.count
            ));
        }
    }

    if let Some(mem) = &snap.memory {
        type_line(&mut out, "wym_mem_live_bytes", "gauge");
        out.push_str(&format!("wym_mem_live_bytes {}\n", mem.live_bytes));
        type_line(&mut out, "wym_mem_peak_bytes", "gauge");
        out.push_str(&format!("wym_mem_peak_bytes {}\n", mem.peak_live_bytes));
    }

    out
}

fn type_line(out: &mut String, metric: &str, kind: &str) {
    out.push_str(&format!("# TYPE {metric} {kind}\n"));
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; we map everything else
/// (dots, dashes, slashes) to `_` and prefix a leading digit.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

/// Label-value escaping per the text-format spec.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Prometheus accepts the usual float spellings; reuse the workspace's
/// shortest-exact rendering via Json for consistency, special-casing the
/// infinities it cannot carry.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        crate::json::Json::Num(v).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::new_enabled();
        rec.counter_add("classify.records", 42);
        rec.counter_add("obs.drift.trips", 1);
        rec.gauge_set("obs.drift.score.psi", 0.25);
        rec.hist_observe("decision.margin", Some(&[0.1, 0.25]), 0.05);
        rec.hist_observe("decision.margin", Some(&[0.1, 0.25]), 0.3);
        rec.snapshot()
    }

    #[test]
    fn counters_become_totals_and_names_sanitize() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("# TYPE wym_classify_records_total counter"), "{text}");
        assert!(text.contains("wym_classify_records_total 42\n"));
        assert!(text.contains("wym_obs_drift_trips_total 1\n"));
        assert!(text.contains("wym_obs_drift_score_psi 0.25\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_inf_terminal() {
        let text = prometheus_text(&sample_snapshot());
        assert!(text.contains("wym_decision_margin_bucket{le=\"0.1\"} 1\n"), "{text}");
        assert!(text.contains("wym_decision_margin_bucket{le=\"0.25\"} 1\n"));
        assert!(text.contains("wym_decision_margin_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("wym_decision_margin_count 2\n"));
    }

    #[test]
    fn spans_export_seconds_with_escaped_path_labels() {
        let mut snap = sample_snapshot();
        snap.spans.push(crate::recorder::SpanStat {
            path: "fit/score\"q\"".to_string(),
            count: 2,
            total_ns: 1_500_000_000,
            min_ns: 0,
            max_ns: 0,
            mem: None,
        });
        let text = prometheus_text(&snap);
        assert!(text.contains("wym_span_seconds_sum{path=\"fit/score\\\"q\\\"\"} 1.5\n"), "{text}");
        assert!(text.contains("wym_span_seconds_count{path=\"fit/score\\\"q\\\"\"} 2\n"));
    }

    #[test]
    fn leading_digit_names_get_prefixed() {
        assert_eq!(sanitize("2pass.rate"), "_2pass_rate");
        assert_eq!(sanitize("ok_name"), "ok_name");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(prometheus_text(&Snapshot::default()), "");
    }
}
