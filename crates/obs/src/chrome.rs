//! Chrome trace-event export and flight-dump summarization.
//!
//! A [`FlightDump`] (see [`crate::ring`]) serializes two ways:
//!
//! - **Text** ([`render_text`]) — the human-readable post-mortem: per-lane
//!   event tails, spans open at capture, drop counts.
//! - **Chrome trace-event JSON** ([`to_chrome_json`]) — the object format
//!   of the [Trace Event spec] that `chrome://tracing` and Perfetto load
//!   directly: `B`/`E` duration events per span, `C` counter samples, `i`
//!   instants for decisions and marks, and `M` metadata naming each lane.
//!   Timestamps are microseconds since the flight epoch; dump provenance
//!   (reason, capture wall time, open spans whose `B` may have been
//!   evicted) rides in the top-level `metadata` object.
//!
//! [`summarize`] is the reader side: `wym obs flight <dump>` parses a
//! written trace back with [`crate::json::parse`] and prints the tail
//! summary, so a dump is useful even without a trace viewer at hand.
//!
//! Dumps carry wall-clock timestamps and are inherently nondeterministic —
//! they are never written into `obs_diff`-checked snapshots, and
//! `FLIGHT_*` artifacts are not baseline-managed.
//!
//! [Trace Event spec]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{self, Json};
use crate::ring::{EventKind, FlightDump};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How many trailing events per lane the summaries show.
const TAIL_EVENTS: usize = 8;
/// How many trailing decision events the summaries show.
const TAIL_DECISIONS: usize = 5;

fn phase(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Enter => "B",
        EventKind::Exit => "E",
        EventKind::Counter => "C",
        EventKind::Decision | EventKind::Mark => "i",
    }
}

/// The dump as a Chrome trace-event JSON object
/// (`{"traceEvents": [...], "metadata": {...}}`).
pub fn to_chrome_json(dump: &FlightDump) -> Json {
    let mut events = Vec::new();
    let mut thread_meta = Vec::new();
    for t in &dump.threads {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(1)),
            ("tid", Json::UInt(t.tid)),
            ("args", Json::obj(vec![(
                "name",
                Json::str(format!("lane {} [{}]", t.tid, t.label)),
            )])),
        ]));
        for e in &t.events {
            let mut fields = vec![
                ("name", Json::str(&e.name)),
                ("ph", Json::str(phase(e.kind))),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(t.tid)),
                ("ts", Json::Num(e.ts_ns as f64 / 1000.0)),
            ];
            match e.kind {
                EventKind::Enter => {}
                EventKind::Exit => {
                    fields.push(("args", Json::obj(vec![("dur_ns", Json::Num(e.value))])));
                }
                EventKind::Counter => {
                    fields.push(("args", Json::obj(vec![("value", Json::Num(e.value))])));
                }
                EventKind::Decision => {
                    fields.push(("s", Json::str("t")));
                    fields.push(("args", Json::obj(vec![("score", Json::Num(e.value))])));
                }
                EventKind::Mark => {
                    fields.push(("s", Json::str("t")));
                }
            }
            events.push(Json::obj(fields));
        }
        thread_meta.push(Json::obj(vec![
            ("tid", Json::UInt(t.tid)),
            ("label", Json::str(&t.label)),
            ("events", Json::UInt(t.events.len() as u64)),
            ("dropped", Json::UInt(t.dropped)),
            (
                "open",
                Json::Arr(
                    t.open
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("name", Json::str(&o.name)),
                                ("ts", Json::Num(o.ts_ns as f64 / 1000.0)),
                                ("open_ms", Json::UInt(o.open_ms)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]));
    }
    Json::obj(vec![
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(events)),
        (
            "metadata",
            Json::obj(vec![
                ("tool", Json::str("wym-obs flight recorder")),
                ("reason", Json::str(&dump.reason)),
                ("captured_unix_ms", Json::UInt(dump.captured_unix_ms)),
                ("captured_ts_us", Json::Num(dump.captured_ts_ns as f64 / 1000.0)),
                ("ring_capacity", Json::UInt(dump.capacity as u64)),
                ("threads", Json::Arr(thread_meta)),
            ]),
        ),
    ])
}

fn fmt_ts_ms(ts_ns: u64) -> String {
    format!("{:>12.3}ms", ts_ns as f64 / 1e6)
}

fn fmt_event(e: &crate::ring::Event) -> String {
    let detail = match e.kind {
        EventKind::Enter => String::new(),
        EventKind::Exit => format!("  ({:.3}ms)", e.value / 1e6),
        EventKind::Counter => format!("  +{}", e.value),
        EventKind::Decision => format!("  score={:.4}", e.value),
        EventKind::Mark => String::new(),
    };
    format!("{} {:>8}  {}{}", fmt_ts_ms(e.ts_ns), e.kind.as_str(), e.name, detail)
}

/// The dump as a human-readable post-mortem report.
pub fn render_text(dump: &FlightDump) -> String {
    let mut out = String::new();
    out.push_str("── flight dump ───────────────────────────────────────\n");
    out.push_str(&format!("reason:    {}\n", dump.reason));
    out.push_str(&format!(
        "captured:  unix {} ms, {:.3} ms after flight start\n",
        dump.captured_unix_ms,
        dump.captured_ts_ns as f64 / 1e6
    ));
    out.push_str(&format!(
        "lanes:     {} (ring capacity {} events each)\n",
        dump.threads.len(),
        dump.capacity
    ));
    for t in &dump.threads {
        out.push_str(&format!(
            "\nlane {} [{}] — {} events retained, {} dropped\n",
            t.tid,
            t.label,
            t.events.len(),
            t.dropped
        ));
        if !t.open.is_empty() {
            out.push_str("  open at capture (outermost first):\n");
            for o in &t.open {
                out.push_str(&format!(
                    "    {}  open {} ms (entered {})\n",
                    o.name,
                    o.open_ms,
                    fmt_ts_ms(o.ts_ns).trim_start()
                ));
            }
        }
        let tail = t.events.len().saturating_sub(TAIL_EVENTS);
        if tail > 0 {
            out.push_str(&format!("  … {tail} earlier events retained in the trace\n"));
        }
        for e in &t.events[tail..] {
            out.push_str(&format!("  {}\n", fmt_event(e)));
        }
    }
    let mut decisions: Vec<(u64, String)> = dump
        .threads
        .iter()
        .flat_map(|t| {
            t.events
                .iter()
                .filter(|e| e.kind == EventKind::Decision)
                .map(|e| (e.ts_ns, fmt_event(e)))
        })
        .collect();
    decisions.sort_by_key(|(ts, _)| *ts);
    if !decisions.is_empty() {
        out.push_str(&format!("\ndecision tail (last {TAIL_DECISIONS}):\n"));
        for (_, line) in decisions.iter().rev().take(TAIL_DECISIONS).rev() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out
}

/// Writes the dump as `FLIGHT_<stem>_<tag>.txt` and
/// `FLIGHT_<stem>_<tag>.trace.json` under `dir` (created if absent).
/// Returns the two paths. Used by the panic hook and stall watchdog;
/// `FLIGHT_*` artifacts are nondeterministic and never baseline-managed.
pub fn write_dump_files(
    dir: &str,
    stem: &str,
    tag: &str,
    dump: &FlightDump,
) -> std::io::Result<(String, String)> {
    std::fs::create_dir_all(dir)?;
    let txt_path = PathBuf::from(dir).join(format!("FLIGHT_{stem}_{tag}.txt"));
    let json_path = PathBuf::from(dir).join(format!("FLIGHT_{stem}_{tag}.trace.json"));
    std::fs::File::create(&txt_path)?.write_all(render_text(dump).as_bytes())?;
    write_chrome_file(&json_path, dump)?;
    Ok((txt_path.display().to_string(), json_path.display().to_string()))
}

/// Writes the dump as Chrome trace-event JSON to `path`. Returns the
/// number of trace events written (including lane-name metadata events).
pub fn write_chrome_file(path: &Path, dump: &FlightDump) -> std::io::Result<usize> {
    let trace = to_chrome_json(dump);
    let n = match &trace {
        Json::Obj(fields) => fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map_or(0, |(_, v)| match v {
                Json::Arr(events) => events.len(),
                _ => 0,
            }),
        _ => 0,
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::File::create(path)?.write_all(trace.pretty().as_bytes())?;
    Ok(n)
}

// ── Summarization (the `wym obs flight` reader) ─────────────────────────

fn obj_get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Int(n) => Some(*n as f64),
        Json::UInt(n) => Some(*n as f64),
        _ => None,
    }
}

fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::UInt(n) => Some(*n),
        Json::Int(n) => u64::try_from(*n).ok(),
        Json::Num(n) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Summarizes a parsed Chrome trace written by this module: dump
/// provenance, last events per lane, spans open at capture, and the
/// decision tail. Errors describe what made the input unreadable.
pub fn summarize(trace: &Json) -> Result<String, String> {
    let events = match obj_get(trace, "traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => return Err("no traceEvents array — not a Chrome trace-event file".to_string()),
    };
    let meta = obj_get(trace, "metadata");
    let mut out = String::new();
    out.push_str("── flight dump summary ───────────────────────────────\n");
    if let Some(meta) = meta {
        if let Some(reason) = obj_get(meta, "reason").and_then(as_str) {
            out.push_str(&format!("reason:    {reason}\n"));
        }
        if let Some(ms) = obj_get(meta, "captured_unix_ms").and_then(as_u64) {
            out.push_str(&format!("captured:  unix {ms} ms\n"));
        }
        if let Some(cap) = obj_get(meta, "ring_capacity").and_then(as_u64) {
            out.push_str(&format!("capacity:  {cap} events per lane\n"));
        }
    }
    out.push_str(&format!("trace:     {} events\n", events.len()));

    // Lane labels from M metadata events; real events grouped per lane.
    let mut lanes: Vec<(u64, String, Vec<&Json>)> = Vec::new();
    for e in events {
        let tid = obj_get(e, "tid").and_then(as_u64).unwrap_or(0);
        let ph = obj_get(e, "ph").and_then(as_str).unwrap_or("");
        let lane = match lanes.iter_mut().find(|(t, _, _)| *t == tid) {
            Some(lane) => lane,
            None => {
                lanes.push((tid, format!("lane {tid}"), Vec::new()));
                lanes.last_mut().expect("just pushed")
            }
        };
        if ph == "M" {
            if let Some(name) =
                obj_get(e, "args").and_then(|a| obj_get(a, "name")).and_then(as_str)
            {
                lane.1 = name.to_string();
            }
        } else {
            lane.2.push(e);
        }
    }
    lanes.sort_by_key(|(tid, _, _)| *tid);

    for (tid, label, lane_events) in &lanes {
        out.push_str(&format!("\n{label} — {} events\n", lane_events.len()));
        if let Some(meta) = meta {
            let lane_meta = match obj_get(meta, "threads") {
                Some(Json::Arr(threads)) => threads
                    .iter()
                    .find(|t| obj_get(t, "tid").and_then(as_u64) == Some(*tid)),
                _ => None,
            };
            if let Some(lm) = lane_meta {
                if let Some(dropped) = obj_get(lm, "dropped").and_then(as_u64) {
                    if dropped > 0 {
                        out.push_str(&format!("  dropped:  {dropped} evicted events\n"));
                    }
                }
                if let Some(Json::Arr(open)) = obj_get(lm, "open") {
                    if !open.is_empty() {
                        out.push_str("  open at capture:\n");
                        for o in open {
                            let name = obj_get(o, "name").and_then(as_str).unwrap_or("?");
                            let open_ms = obj_get(o, "open_ms").and_then(as_u64).unwrap_or(0);
                            out.push_str(&format!("    {name}  open {open_ms} ms\n"));
                        }
                    }
                }
            }
        }
        let tail = lane_events.len().saturating_sub(TAIL_EVENTS);
        out.push_str(&format!("  last {} events:\n", lane_events.len() - tail));
        for e in &lane_events[tail..] {
            let name = obj_get(e, "name").and_then(as_str).unwrap_or("?");
            let ph = obj_get(e, "ph").and_then(as_str).unwrap_or("?");
            let ts = obj_get(e, "ts").and_then(as_f64).unwrap_or(0.0);
            out.push_str(&format!("    {:>12.3}ms {ph} {name}\n", ts / 1000.0));
        }
    }

    let mut decisions: Vec<(f64, String)> = lanes
        .iter()
        .flat_map(|(_, _, lane_events)| lane_events.iter())
        .filter_map(|e| {
            let name = obj_get(e, "name").and_then(as_str)?;
            if !name.starts_with("decision.") {
                return None;
            }
            let ts = obj_get(e, "ts").and_then(as_f64).unwrap_or(0.0);
            let score = obj_get(e, "args")
                .and_then(|a| obj_get(a, "score"))
                .and_then(as_f64)
                .unwrap_or(f64::NAN);
            Some((ts, format!("{:>12.3}ms {name}  score={score:.4}", ts / 1000.0)))
        })
        .collect();
    decisions.sort_by(|a, b| a.0.total_cmp(&b.0));
    if !decisions.is_empty() {
        out.push_str(&format!("\ndecision tail (last {TAIL_DECISIONS}):\n"));
        for (_, line) in decisions.iter().rev().take(TAIL_DECISIONS).rev() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    Ok(out)
}

/// Reads and summarizes a trace file written by [`write_chrome_file`] /
/// [`write_dump_files`].
pub fn summarize_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    summarize(&trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{with_flight, Flight};
    use std::sync::Arc;

    fn sample_dump() -> FlightDump {
        let flight = Arc::new(Flight::new_enabled(64));
        with_flight(Arc::clone(&flight), || {
            let outer = crate::span("chrome_outer");
            {
                let _inner = crate::span("chrome_inner");
                crate::counter_add("chrome.counter", 7);
            }
            crate::ring::mark("chrome.marker");
            std::mem::forget(outer); // leave one span open at capture
        });
        flight.dump("test: sample")
    }

    #[test]
    fn chrome_json_has_phases_and_metadata() {
        let dump = sample_dump();
        let trace = to_chrome_json(&dump);
        let text = trace.pretty();
        let parsed = json::parse(&text).expect("written trace must parse");
        let events = match obj_get(&parsed, "traceEvents") {
            Some(Json::Arr(events)) => events,
            _ => panic!("missing traceEvents"),
        };
        let phases: Vec<&str> =
            events.iter().filter_map(|e| obj_get(e, "ph").and_then(as_str)).collect();
        for needed in ["M", "B", "E", "C", "i"] {
            assert!(phases.contains(&needed), "missing phase {needed} in {phases:?}");
        }
        let meta = obj_get(&parsed, "metadata").expect("metadata");
        assert_eq!(obj_get(meta, "reason").and_then(as_str), Some("test: sample"));
        assert!(text.contains("chrome_inner") && text.contains("thread_name"));
    }

    #[test]
    fn summarize_reports_open_spans_and_tails() {
        let dump = sample_dump();
        let summary = summarize(&to_chrome_json(&dump)).expect("summarizable");
        assert!(summary.contains("reason:    test: sample"), "summary:\n{summary}");
        assert!(summary.contains("open at capture"), "summary:\n{summary}");
        assert!(summary.contains("chrome_outer"), "summary:\n{summary}");
        assert!(summary.contains("chrome.marker"), "summary:\n{summary}");
    }

    #[test]
    fn summarize_rejects_non_trace_json() {
        let err = summarize(&Json::obj(vec![("spans", Json::Arr(Vec::new()))]))
            .expect_err("not a trace");
        assert!(err.contains("traceEvents"));
    }

    #[test]
    fn dump_files_round_trip_through_summarize_file() {
        let dir = std::env::temp_dir().join(format!("wym_flight_test_{}", std::process::id()));
        let dump = sample_dump();
        let (txt, json_path) =
            write_dump_files(dir.to_str().unwrap(), "unit", "test", &dump).unwrap();
        assert!(txt.ends_with("FLIGHT_unit_test.txt"));
        let text = std::fs::read_to_string(&txt).unwrap();
        assert!(text.contains("chrome_outer") && text.contains("open at capture"));
        let summary = summarize_file(Path::new(&json_path)).expect("file summarizable");
        assert!(summary.contains("chrome_inner"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
