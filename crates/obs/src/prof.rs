//! Memory profiling: a tracking global allocator with per-span attribution.
//!
//! [`TrackingAlloc`] wraps the system allocator. Binaries opt in with
//! [`crate::install_tracking_alloc!`]; recording stays off until
//! [`set_enabled`] flips one process-wide flag, so the installed-but-idle
//! path costs a single relaxed atomic load per allocator call (pinned by
//! the `components_bench` `prof` group).
//!
//! When profiling is on, every allocation and deallocation is charged to
//! the **innermost open span** of the thread it happens on — the same
//! attribution rule folded-stack flamegraphs use, so per-span numbers are
//! *self* costs and parents are reconstructed by summing children. Spans
//! install a [`MemCell`] into a thread-local slot on open and restore the
//! previous one on close; [`crate::capture`] / [`crate::in_context`] carry
//! the slot across `wym-par` workers exactly like the span path, so worker
//! allocations aggregate under the logical parent deterministically (counts
//! and bytes, like span counts, are identical for any thread count on a
//! fixed workload; only scheduling-dependent scratch varies).
//!
//! Allocations made while **no** span is open — program startup, dataset
//! generation outside tracing, allocator bookkeeping — are charged to a
//! synthetic `(unattributed)` root readable via [`unattributed`].
//!
//! The allocator hook is deliberately restricted: it reads one atomic, one
//! const-initialized thread-local `Cell`, and bumps pre-allocated atomic
//! counters. It never allocates, never takes a lock, and never touches a
//! `RefCell`, so it is re-entrancy- and teardown-safe.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// The synthetic root charged when no span is open. Rendered as
/// `(unattributed)` in exports.
pub const UNATTRIBUTED_NAME: &str = "(unattributed)";

/// Process-wide profiling switch; the only state the disabled path reads.
static PROF_ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-wide live-byte track (allocated minus freed since enable).
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`].
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// The `(unattributed)` root cell.
static UNATTRIBUTED: MemCell = MemCell::new();

thread_local! {
    /// The cell charged by this thread's allocations; null = unattributed.
    /// `Cell<*const _>` with const init has no destructor, so the allocator
    /// hook can read it even during thread teardown.
    static CURRENT_CELL: Cell<*const MemCell> = const { Cell::new(std::ptr::null()) };
    /// Owning mirror of [`CURRENT_CELL`] for [`crate::capture`]. The
    /// allocator hook never touches this `RefCell` — only span guards and
    /// context installs do, outside any allocator re-entrancy.
    static CURRENT_ARC: std::cell::RefCell<Option<Arc<MemCell>>> =
        const { std::cell::RefCell::new(None) };
}

/// The charge target currently installed on this thread, for context
/// capture across `wym-par` workers.
pub(crate) fn current_arc() -> Option<Arc<MemCell>> {
    CURRENT_ARC.with(|r| r.borrow().clone())
}

/// Turns memory profiling on or off. Requires [`TrackingAlloc`] to be
/// installed as the global allocator to have any effect.
pub fn set_enabled(on: bool) {
    PROF_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether memory profiling is currently on.
pub fn enabled() -> bool {
    PROF_ENABLED.load(Ordering::Relaxed)
}

/// Live heap bytes (allocated minus freed) since profiling was enabled.
/// Can be negative when memory allocated before enabling is freed after.
pub fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`].
pub fn peak_live_bytes() -> i64 {
    PEAK_LIVE_BYTES.load(Ordering::Relaxed)
}

/// Statistics of the `(unattributed)` synthetic root.
pub fn unattributed() -> MemStat {
    UNATTRIBUTED.stat()
}

/// Clears the `(unattributed)` root and the live/peak track (tests and
/// fresh runs).
pub fn reset() {
    UNATTRIBUTED.reset();
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_LIVE_BYTES.store(0, Ordering::Relaxed);
}

/// Aggregated allocator activity charged to one span path (or the
/// unattributed root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStat {
    /// Number of allocations (including the alloc half of reallocs).
    pub allocs: u64,
    /// Number of deallocations (including the free half of reallocs).
    pub frees: u64,
    /// Total bytes allocated.
    pub alloc_bytes: u64,
    /// Total bytes freed.
    pub free_bytes: u64,
    /// Peak of (alloc - free) bytes charged here — the span's live-memory
    /// high-water mark. Frees of memory charged elsewhere can drive the
    /// running net negative; the peak only ever records maxima.
    pub peak_net_bytes: i64,
}

impl MemStat {
    /// Net bytes still charged here (allocated minus freed).
    pub fn net_bytes(&self) -> i64 {
        self.alloc_bytes as i64 - self.free_bytes as i64
    }

    /// Folds `other` into `self`: counts and bytes add, peaks take the max
    /// (the same aggregation spans use for timings).
    pub fn merge(&mut self, other: &MemStat) {
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.alloc_bytes += other.alloc_bytes;
        self.free_bytes += other.free_bytes;
        self.peak_net_bytes = self.peak_net_bytes.max(other.peak_net_bytes);
    }

    /// Whether nothing was charged.
    pub fn is_empty(&self) -> bool {
        self.allocs == 0 && self.frees == 0
    }
}

/// A charge target: atomic counters one span entry's allocations land in.
/// Const-constructible so the `(unattributed)` root can be a plain static.
#[derive(Debug, Default)]
pub struct MemCell {
    allocs: AtomicU64,
    frees: AtomicU64,
    alloc_bytes: AtomicU64,
    free_bytes: AtomicU64,
    net_bytes: AtomicI64,
    peak_net_bytes: AtomicI64,
}

impl MemCell {
    /// An empty cell.
    pub const fn new() -> MemCell {
        MemCell {
            allocs: AtomicU64::new(0),
            frees: AtomicU64::new(0),
            alloc_bytes: AtomicU64::new(0),
            free_bytes: AtomicU64::new(0),
            net_bytes: AtomicI64::new(0),
            peak_net_bytes: AtomicI64::new(0),
        }
    }

    fn charge_alloc(&self, bytes: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.alloc_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let cur = self.net_bytes.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
        self.peak_net_bytes.fetch_max(cur, Ordering::Relaxed);
    }

    fn charge_free(&self, bytes: usize) {
        self.frees.fetch_add(1, Ordering::Relaxed);
        self.free_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.net_bytes.fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn stat(&self) -> MemStat {
        MemStat {
            allocs: self.allocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            alloc_bytes: self.alloc_bytes.load(Ordering::Relaxed),
            free_bytes: self.free_bytes.load(Ordering::Relaxed),
            peak_net_bytes: self.peak_net_bytes.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        self.allocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.alloc_bytes.store(0, Ordering::Relaxed);
        self.free_bytes.store(0, Ordering::Relaxed);
        self.net_bytes.store(0, Ordering::Relaxed);
        self.peak_net_bytes.store(0, Ordering::Relaxed);
    }
}

/// RAII installation of a charge target into this thread's slot; restores
/// the previous target (even on panic — the guard lives in the span guard
/// or `in_context` frame being unwound).
pub(crate) struct CellScope {
    prev_ptr: *const MemCell,
    prev_arc: Option<Arc<MemCell>>,
    /// Keeps the installed cell alive for the raw pointer's lifetime.
    _own: Option<Arc<MemCell>>,
}

impl CellScope {
    /// Installs `cell` (or clears the slot for `None`) until drop.
    pub(crate) fn install(cell: Option<Arc<MemCell>>) -> CellScope {
        let ptr = cell.as_ref().map_or(std::ptr::null(), Arc::as_ptr);
        let prev_ptr = CURRENT_CELL.with(|c| c.replace(ptr));
        let prev_arc = CURRENT_ARC.with(|r| r.replace(cell.clone()));
        CellScope { prev_ptr, prev_arc, _own: cell }
    }
}

impl Drop for CellScope {
    fn drop(&mut self) {
        // Raw pointer first: the hook must never see a pointer whose Arc
        // mirror has already been swapped out.
        CURRENT_CELL.with(|c| c.set(self.prev_ptr));
        let prev = self.prev_arc.take();
        CURRENT_ARC.with(|r| *r.borrow_mut() = prev);
    }
}

fn on_alloc(bytes: usize) {
    let cur = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_LIVE_BYTES.fetch_max(cur, Ordering::Relaxed);
    let ptr = CURRENT_CELL.try_with(Cell::get).unwrap_or(std::ptr::null());
    // SAFETY: a non-null pointer was installed by a live `CellScope` whose
    // `_own` Arc keeps the cell alive until the scope drops and resets it.
    let cell = if ptr.is_null() { &UNATTRIBUTED } else { unsafe { &*ptr } };
    cell.charge_alloc(bytes);
}

fn on_free(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
    let ptr = CURRENT_CELL.try_with(Cell::get).unwrap_or(std::ptr::null());
    // SAFETY: as in `on_alloc`.
    let cell = if ptr.is_null() { &UNATTRIBUTED } else { unsafe { &*ptr } };
    cell.charge_free(bytes);
}

/// A [`GlobalAlloc`] wrapper over [`System`] that charges allocator
/// activity to the active span when profiling is enabled. Install it with
/// [`crate::install_tracking_alloc!`]; with profiling off it forwards to
/// the system allocator after one relaxed atomic load.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAlloc;

// SAFETY: all four methods delegate the actual memory management to
// `System` unchanged; the accounting reads atomics and a const-initialized
// TLS `Cell` and never allocates, so it cannot recurse or corrupt state.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && PROF_ENABLED.load(Ordering::Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && PROF_ENABLED.load(Ordering::Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if PROF_ENABLED.load(Ordering::Relaxed) {
            on_free(layout.size());
        }
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && PROF_ENABLED.load(Ordering::Relaxed) {
            on_free(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Installs [`prof::TrackingAlloc`](TrackingAlloc) as the binary's global
/// allocator. One line at the top of `main.rs`:
///
/// ```ignore
/// wym_obs::install_tracking_alloc!();
/// ```
///
/// Profiling stays off (one relaxed atomic load per allocator call) until
/// [`prof::set_enabled`](set_enabled) is called.
#[macro_export]
macro_rules! install_tracking_alloc {
    () => {
        #[global_allocator]
        static WYM_TRACKING_ALLOC: $crate::prof::TrackingAlloc = $crate::prof::TrackingAlloc;
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_charges_and_merges() {
        let cell = MemCell::new();
        cell.charge_alloc(100);
        cell.charge_alloc(50);
        cell.charge_free(30);
        let s = cell.stat();
        assert_eq!((s.allocs, s.frees, s.alloc_bytes, s.free_bytes), (2, 1, 150, 30));
        assert_eq!(s.net_bytes(), 120);
        assert_eq!(s.peak_net_bytes, 150);

        let mut agg = MemStat::default();
        agg.merge(&s);
        agg.merge(&s);
        assert_eq!(agg.allocs, 4);
        assert_eq!(agg.alloc_bytes, 300);
        assert_eq!(agg.peak_net_bytes, 150, "peaks take the max, not the sum");
    }

    #[test]
    fn peak_ignores_negative_net() {
        let cell = MemCell::new();
        cell.charge_free(1000); // freeing memory charged elsewhere
        cell.charge_alloc(10);
        let s = cell.stat();
        assert_eq!(s.net_bytes(), -990);
        assert!(s.peak_net_bytes <= 0, "peak never records a spurious high");
    }

    #[test]
    fn cell_scope_installs_and_restores() {
        let a = Arc::new(MemCell::new());
        let b = Arc::new(MemCell::new());
        assert!(CURRENT_CELL.with(Cell::get).is_null());
        {
            let _sa = CellScope::install(Some(Arc::clone(&a)));
            assert_eq!(CURRENT_CELL.with(Cell::get), Arc::as_ptr(&a));
            {
                let _sb = CellScope::install(Some(Arc::clone(&b)));
                assert_eq!(CURRENT_CELL.with(Cell::get), Arc::as_ptr(&b));
            }
            assert_eq!(CURRENT_CELL.with(Cell::get), Arc::as_ptr(&a));
        }
        assert!(CURRENT_CELL.with(Cell::get).is_null());
    }

    #[test]
    fn hooks_route_to_current_or_unattributed() {
        // Drive the hook functions directly (the test harness does not
        // install the tracking allocator): with a cell installed the cell
        // is charged; without one the synthetic root is.
        let cell = Arc::new(MemCell::new());
        let before_unattr = unattributed();
        {
            let _s = CellScope::install(Some(Arc::clone(&cell)));
            on_alloc(64);
            on_free(16);
        }
        on_alloc(8);
        let s = cell.stat();
        assert_eq!((s.allocs, s.alloc_bytes, s.frees, s.free_bytes), (1, 64, 1, 16));
        let after_unattr = unattributed();
        assert!(after_unattr.alloc_bytes >= before_unattr.alloc_bytes + 8);
    }
}
