//! Snapshot diffing: the regression-sentinel core behind `obs_diff`.
//!
//! [`diff`] compares two [`Snapshot`]s — an *old* baseline and a *new*
//! candidate — metric by metric against per-metric thresholds and produces
//! a [`DiffReport`] of findings. The policy encodes what WYM treats as
//! deterministic versus noisy:
//!
//! * **Structure is exact.** A span, counter, histogram, or stage present
//!   in the baseline but missing from the candidate is a regression, as is
//!   a changed span entry count — the pipeline is deterministic, so the
//!   *shape* of a run must reproduce bit-for-bit.
//! * **Deterministic counters are exact** (threshold 0 by default): a pair
//!   count or cache-hit count that moves means behaviour changed. Counters
//!   under an ignore prefix (`kernel.dispatch.` by default — which SIMD
//!   path dispatch picked depends on the CPU) are skipped.
//! * **Wall time is noisy**: a span only regresses when its mean exceeds
//!   the baseline by both a relative factor *and* an absolute floor, so
//!   microsecond spans can't trip the gate on scheduler jitter. Faster is
//!   reported as [`Status::Improved`], never as a failure.
//! * **Memory is semi-deterministic**: allocation counts/bytes get a
//!   generous relative threshold (allocator and hash-map growth details
//!   may shift between builds).
//! * **Histograms compare per bucket**, not just by summary stats — a
//!   distribution that shifted shape with the same mean is still a change.

use crate::hist::Histogram;
use crate::prof::MemStat;
use crate::recorder::{Snapshot, SpanStat};

/// Per-metric thresholds and skip lists for one diff run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Span mean wall time may grow by this fraction before regressing.
    pub span_wall_rel: f64,
    /// …and must also grow by at least this many absolute nanoseconds.
    pub span_wall_abs_ns: u64,
    /// Allowed relative drift for counters (0 = exact).
    pub counter_rel: f64,
    /// Allowed relative drift for gauges.
    pub gauge_rel: f64,
    /// Allowed relative drift for memory alloc counts/bytes.
    pub mem_rel: f64,
    /// Allowed relative drift for `obs.drift.*` PSI gauges. PSI values are
    /// deterministic (integer bucket counts over bit-identical scores), so
    /// the default is tight; loosen it to compare baselines taken over
    /// intentionally different traffic.
    pub drift_rel: f64,
    /// Skip wall-time comparisons entirely (cross-machine baselines).
    pub ignore_wall: bool,
    /// Skip memory comparisons entirely.
    pub ignore_mem: bool,
    /// Name prefixes to skip for counters/gauges/histograms.
    pub ignore: Vec<String>,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            span_wall_rel: 0.5,
            span_wall_abs_ns: 5_000_000,
            counter_rel: 0.0,
            gauge_rel: 1e-9,
            mem_rel: 0.25,
            drift_rel: 1e-6,
            ignore_wall: false,
            ignore_mem: false,
            // SIMD dispatch counters name the path the host CPU selected;
            // two correct machines legitimately disagree on them.
            ignore: vec!["kernel.dispatch.".to_string()],
        }
    }
}

impl DiffConfig {
    fn ignored(&self, name: &str) -> bool {
        self.ignore.iter().any(|p| name.starts_with(p.as_str()))
    }
}

/// Verdict of one finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within thresholds.
    Ok,
    /// Better than baseline (faster / fewer allocations).
    Improved,
    /// Notable but not gating (e.g. a new span appeared).
    Info,
    /// Outside thresholds — gates the run.
    Regression,
}

impl Status {
    fn label(&self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Improved => "improved",
            Status::Info => "info",
            Status::Regression => "REGRESSION",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Metric family (`span.wall`, `counter`, `hist.bucket`, …).
    pub kind: String,
    /// Metric name or span path.
    pub name: String,
    /// Baseline value, rendered.
    pub old: String,
    /// Candidate value, rendered.
    pub new: String,
    /// Human note (delta, threshold that fired).
    pub note: String,
    /// Verdict.
    pub status: Status,
}

/// All findings of one diff run.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every comparison performed, in snapshot order. `Ok` findings are
    /// kept so the table shows what *was* checked, not only what failed.
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// The findings that gate (status == Regression).
    pub fn regressions(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.status == Status::Regression).collect()
    }

    /// Whether the candidate passes.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// A fixed-width verdict table. `verbose` includes `Ok` rows; the
    /// summary line and any non-Ok rows always print.
    pub fn render_table(&self, verbose: bool) -> String {
        let mut out = String::new();
        let shown: Vec<&Finding> = self
            .findings
            .iter()
            .filter(|f| verbose || f.status != Status::Ok)
            .collect();
        out.push_str(&format!(
            "{:<12} {:<34} {:>14} {:>14}  {:<10} note\n",
            "kind", "name", "old", "new", "status"
        ));
        for f in &shown {
            out.push_str(&format!(
                "{:<12} {:<34} {:>14} {:>14}  {:<10} {}\n",
                f.kind,
                clip(&f.name, 34),
                clip(&f.old, 14),
                clip(&f.new, 14),
                f.status.label(),
                f.note
            ));
        }
        let n_reg = self.regressions().len();
        let n_impr = self.findings.iter().filter(|f| f.status == Status::Improved).count();
        out.push_str(&format!(
            "{} checks, {} regressions, {} improvements\n",
            self.findings.len(),
            n_reg,
            n_impr
        ));
        out
    }
}

fn clip(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_string()
    } else {
        let head: String = s.chars().take(width.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

/// Relative change of `new` vs `old`, with 0→0 counting as unchanged and
/// 0→x as infinite.
fn rel_delta(old: f64, new: f64) -> f64 {
    if old == new {
        0.0
    } else if old == 0.0 {
        f64::INFINITY
    } else {
        (new - old).abs() / old.abs()
    }
}

fn pct(x: f64) -> String {
    if x.is_infinite() {
        "∞".to_string()
    } else {
        format!("{:+.1}%", x * 100.0)
    }
}

/// Compares `new` against the `old` baseline under `cfg`.
pub fn diff(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig) -> DiffReport {
    let mut rep = DiffReport::default();
    diff_spans(old, new, cfg, &mut rep);
    diff_counters(old, new, cfg, &mut rep);
    diff_gauges(old, new, cfg, &mut rep);
    diff_histograms(old, new, cfg, &mut rep);
    diff_stages(old, new, &mut rep);
    if !cfg.ignore_mem {
        diff_memory(old, new, cfg, &mut rep);
    }
    diff_windows(old, new, cfg, &mut rep);
    rep
}

fn diff_spans(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig, rep: &mut DiffReport) {
    for o in &old.spans {
        let Some(n) = new.spans.iter().find(|s| s.path == o.path) else {
            rep.findings.push(Finding {
                kind: "span".into(),
                name: o.path.clone(),
                old: format!("{}×", o.count),
                new: "-".into(),
                note: "span disappeared".into(),
                status: Status::Regression,
            });
            continue;
        };
        if n.count != o.count {
            rep.findings.push(Finding {
                kind: "span.count".into(),
                name: o.path.clone(),
                old: o.count.to_string(),
                new: n.count.to_string(),
                note: "entry count changed (pipeline shape is deterministic)".into(),
                status: Status::Regression,
            });
        } else {
            rep.findings.push(Finding {
                kind: "span.count".into(),
                name: o.path.clone(),
                old: o.count.to_string(),
                new: n.count.to_string(),
                note: String::new(),
                status: Status::Ok,
            });
        }
        if !cfg.ignore_wall {
            diff_span_wall(o, n, cfg, rep);
        }
        if !cfg.ignore_mem {
            diff_span_mem(o, n, cfg, rep);
        }
    }
    for n in &new.spans {
        if !old.spans.iter().any(|s| s.path == n.path) {
            rep.findings.push(Finding {
                kind: "span".into(),
                name: n.path.clone(),
                old: "-".into(),
                new: format!("{}×", n.count),
                note: "new span (not in baseline)".into(),
                status: Status::Info,
            });
        }
    }
}

fn diff_span_wall(o: &SpanStat, n: &SpanStat, cfg: &DiffConfig, rep: &mut DiffReport) {
    let (om, nm) = (o.mean_ns(), n.mean_ns());
    let threshold = (om as f64 * (1.0 + cfg.span_wall_rel)) + cfg.span_wall_abs_ns as f64;
    let status = if (nm as f64) > threshold {
        Status::Regression
    } else if nm < om {
        Status::Improved
    } else {
        Status::Ok
    };
    let note = match status {
        Status::Regression => format!(
            "mean {} over limit ({} allowed)",
            pct(rel_delta(om as f64, nm as f64)),
            pct(cfg.span_wall_rel)
        ),
        Status::Improved => format!("mean {}", pct(-rel_delta(om as f64, nm as f64))),
        _ => String::new(),
    };
    rep.findings.push(Finding {
        kind: "span.wall".into(),
        name: o.path.clone(),
        old: format!("{om}ns"),
        new: format!("{nm}ns"),
        note,
        status,
    });
}

fn diff_span_mem(o: &SpanStat, n: &SpanStat, cfg: &DiffConfig, rep: &mut DiffReport) {
    let (Some(om), Some(nm)) = (&o.mem, &n.mem) else {
        // Memory attribution present on one side only: profiling settings
        // differ, which is a usage note, not a code regression.
        if o.mem.is_some() != n.mem.is_some() {
            rep.findings.push(Finding {
                kind: "span.mem".into(),
                name: o.path.clone(),
                old: if o.mem.is_some() { "profiled" } else { "-" }.into(),
                new: if n.mem.is_some() { "profiled" } else { "-" }.into(),
                note: "memory profiling differs between runs".into(),
                status: Status::Info,
            });
        }
        return;
    };
    mem_finding("span.mem", &o.path, om, nm, cfg, rep);
}

fn mem_finding(
    kind: &str,
    name: &str,
    om: &MemStat,
    nm: &MemStat,
    cfg: &DiffConfig,
    rep: &mut DiffReport,
) {
    let d_bytes = rel_delta(om.alloc_bytes as f64, nm.alloc_bytes as f64);
    let d_allocs = rel_delta(om.allocs as f64, nm.allocs as f64);
    let grew = nm.alloc_bytes > om.alloc_bytes || nm.allocs > om.allocs;
    let status = if (d_bytes > cfg.mem_rel || d_allocs > cfg.mem_rel) && grew {
        Status::Regression
    } else if nm.alloc_bytes < om.alloc_bytes && d_bytes > cfg.mem_rel {
        Status::Improved
    } else {
        Status::Ok
    };
    let note = match status {
        Status::Regression => format!(
            "allocs {} / bytes {} over {} limit",
            pct(d_allocs),
            pct(d_bytes),
            pct(cfg.mem_rel)
        ),
        Status::Improved => format!("bytes {}", pct(-d_bytes)),
        _ => String::new(),
    };
    rep.findings.push(Finding {
        kind: kind.into(),
        name: name.into(),
        old: format!("{}B/{}", om.alloc_bytes, om.allocs),
        new: format!("{}B/{}", nm.alloc_bytes, nm.allocs),
        note,
        status,
    });
}

/// Counters whose value is elapsed nanoseconds (`*_ns` by convention) are
/// wall clock in disguise: they follow the span wall-time policy instead
/// of the exact deterministic-counter policy.
fn is_wall_counter(name: &str) -> bool {
    name.ends_with("_ns")
}

fn diff_counters(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig, rep: &mut DiffReport) {
    for (name, ov) in &old.counters {
        if cfg.ignored(name) || (is_wall_counter(name) && cfg.ignore_wall) {
            continue;
        }
        let Some(nv) = new.counter(name) else {
            rep.findings.push(Finding {
                kind: "counter".into(),
                name: name.clone(),
                old: ov.to_string(),
                new: "-".into(),
                note: "counter disappeared".into(),
                status: Status::Regression,
            });
            continue;
        };
        let (status, note) = if is_wall_counter(name) {
            let threshold = (*ov as f64 * (1.0 + cfg.span_wall_rel)) + cfg.span_wall_abs_ns as f64;
            if nv as f64 > threshold {
                let d = rel_delta(*ov as f64, nv as f64);
                (
                    Status::Regression,
                    format!("{} over limit ({} allowed, wall counter)", pct(d), pct(cfg.span_wall_rel)),
                )
            } else if nv < *ov {
                (Status::Improved, pct(-rel_delta(*ov as f64, nv as f64)))
            } else {
                (Status::Ok, String::new())
            }
        } else {
            let d = rel_delta(*ov as f64, nv as f64);
            if d > cfg.counter_rel {
                (
                    Status::Regression,
                    format!("{} over {} limit (deterministic counter)", pct(d), pct(cfg.counter_rel)),
                )
            } else {
                (Status::Ok, String::new())
            }
        };
        rep.findings.push(Finding {
            kind: "counter".into(),
            name: name.clone(),
            old: ov.to_string(),
            new: nv.to_string(),
            note,
            status,
        });
    }
    for (name, nv) in &new.counters {
        if is_wall_counter(name) && cfg.ignore_wall {
            continue;
        }
        if !cfg.ignored(name) && old.counter(name).is_none() {
            rep.findings.push(Finding {
                kind: "counter".into(),
                name: name.clone(),
                old: "-".into(),
                new: nv.to_string(),
                note: "new counter (not in baseline)".into(),
                status: Status::Info,
            });
        }
    }
}

fn diff_gauges(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig, rep: &mut DiffReport) {
    for (name, ov) in &old.gauges {
        if cfg.ignored(name) {
            continue;
        }
        let Some(nv) = new.gauge(name) else {
            rep.findings.push(Finding {
                kind: "gauge".into(),
                name: name.clone(),
                old: format!("{ov:.6}"),
                new: "-".into(),
                note: "gauge disappeared".into(),
                status: Status::Regression,
            });
            continue;
        };
        // Drift-sentinel PSI gauges get their own threshold so the gate on
        // them can be tuned without loosening every other gauge.
        let (kind, limit) = if name.starts_with("obs.drift.") {
            ("gauge.drift", cfg.drift_rel)
        } else {
            ("gauge", cfg.gauge_rel)
        };
        let d = rel_delta(*ov, nv);
        let status = if d > limit { Status::Regression } else { Status::Ok };
        rep.findings.push(Finding {
            kind: kind.into(),
            name: name.clone(),
            old: format!("{ov:.6}"),
            new: format!("{nv:.6}"),
            note: if status == Status::Regression {
                format!("{} over {} limit", pct(d), pct(limit))
            } else {
                String::new()
            },
            status,
        });
    }
}

fn diff_histograms(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig, rep: &mut DiffReport) {
    for (name, oh) in &old.histograms {
        if cfg.ignored(name) {
            continue;
        }
        let Some(nh) = new.histogram(name) else {
            rep.findings.push(Finding {
                kind: "hist".into(),
                name: name.clone(),
                old: format!("n={}", oh.count()),
                new: "-".into(),
                note: "histogram disappeared".into(),
                status: Status::Regression,
            });
            continue;
        };
        diff_one_histogram(name, oh, nh, rep);
    }
}

/// Histograms compare structurally: identical bounds, then per-bucket
/// count deltas (not just summary stats — a shape shift with a stable mean
/// is still a behaviour change in a deterministic pipeline).
fn diff_one_histogram(name: &str, oh: &Histogram, nh: &Histogram, rep: &mut DiffReport) {
    if oh.bounds() != nh.bounds() {
        rep.findings.push(Finding {
            kind: "hist".into(),
            name: name.to_string(),
            old: format!("{} bounds", oh.bounds().len()),
            new: format!("{} bounds", nh.bounds().len()),
            note: "bucket boundaries differ — not comparable".into(),
            status: Status::Regression,
        });
        return;
    }
    let mut moved = Vec::new();
    for (i, (oc, nc)) in oh.counts().iter().zip(nh.counts()).enumerate() {
        if oc != nc {
            moved.push(format!("[{i}] {oc}→{nc}"));
        }
    }
    let status = if moved.is_empty() { Status::Ok } else { Status::Regression };
    rep.findings.push(Finding {
        kind: "hist.bucket".into(),
        name: name.to_string(),
        old: format!("n={}", oh.count()),
        new: format!("n={}", nh.count()),
        note: if moved.is_empty() {
            String::new()
        } else {
            format!("bucket deltas: {}", moved.join(", "))
        },
        status,
    });
}

fn diff_stages(old: &Snapshot, new: &Snapshot, rep: &mut DiffReport) {
    for (stage, ov) in &old.stages {
        let nv = new.stages.iter().find(|(k, _)| k == stage).map(|(_, v)| *v);
        // The one stage condition that gates: a stage that ran in the
        // baseline and silently stopped running.
        let status = match nv {
            Some(nv) if *ov > 0 && nv == 0 => Status::Regression,
            None if *ov > 0 => Status::Regression,
            _ => Status::Ok,
        };
        rep.findings.push(Finding {
            kind: "stage".into(),
            name: stage.clone(),
            old: ov.to_string(),
            new: nv.map_or("-".into(), |v| v.to_string()),
            note: if status == Status::Regression {
                "stage stopped running".into()
            } else {
                String::new()
            },
            status,
        });
    }
}

fn diff_memory(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig, rep: &mut DiffReport) {
    let (Some(om), Some(nm)) = (&old.memory, &new.memory) else { return };
    mem_finding("memory.unattr", "(unattributed)", &om.unattributed, &nm.unattributed, cfg, rep);
    let d = rel_delta(om.peak_live_bytes as f64, nm.peak_live_bytes as f64);
    let status = if d > cfg.mem_rel && nm.peak_live_bytes > om.peak_live_bytes {
        Status::Regression
    } else {
        Status::Ok
    };
    rep.findings.push(Finding {
        kind: "memory.peak".into(),
        name: "peak_live_bytes".into(),
        old: om.peak_live_bytes.to_string(),
        new: nm.peak_live_bytes.to_string(),
        note: if status == Status::Regression {
            format!("{} over {} limit", pct(d), pct(cfg.mem_rel))
        } else {
            String::new()
        },
        status,
    });
}

/// Windowed metrics compare frame by frame, aligned on epoch (not ring
/// position — after wrap-around the same epoch can sit at a different
/// index). Ring shape (capacity, advance count) is exact; per-frame
/// counters follow the counter policy (deterministic exact, wall counters
/// under the wall policy, ignore prefixes skipped); per-frame histograms
/// compare per bucket. Baselines without windows diff silently against
/// candidates without windows; presence on one side only is an Info.
fn diff_windows(old: &Snapshot, new: &Snapshot, cfg: &DiffConfig, rep: &mut DiffReport) {
    let (ow, nw) = match (&old.windows, &new.windows) {
        (None, None) => return,
        (Some(ow), Some(nw)) => (ow, nw),
        (ow, _) => {
            rep.findings.push(Finding {
                kind: "windows".into(),
                name: "(ring)".into(),
                old: if ow.is_some() { "present" } else { "-" }.into(),
                new: if ow.is_some() { "-" } else { "present" }.into(),
                note: "windowed metrics enabled in one run only".into(),
                status: Status::Info,
            });
            return;
        }
    };
    let shape_ok = ow.capacity() == nw.capacity() && ow.advances() == nw.advances();
    rep.findings.push(Finding {
        kind: "windows".into(),
        name: "(ring)".into(),
        old: format!("cap {} adv {}", ow.capacity(), ow.advances()),
        new: format!("cap {} adv {}", nw.capacity(), nw.advances()),
        note: if shape_ok {
            String::new()
        } else {
            "ring shape differs (rotation is deterministic)".into()
        },
        status: if shape_ok { Status::Ok } else { Status::Regression },
    });
    for of in ow.frames() {
        let Some(nf) = nw.frames().find(|f| f.epoch == of.epoch) else {
            rep.findings.push(Finding {
                kind: "window.frame".into(),
                name: format!("epoch {}", of.epoch),
                old: format!("{} counters", of.counters.len()),
                new: "-".into(),
                note: "frame missing from candidate ring".into(),
                status: Status::Regression,
            });
            continue;
        };
        for (name, ov) in &of.counters {
            if cfg.ignored(name) || (is_wall_counter(name) && cfg.ignore_wall) {
                continue;
            }
            let label = format!("[{}] {}", of.epoch, name);
            let nv = nf.counters.get(name).copied();
            let exact = !is_wall_counter(name);
            let status = match nv {
                Some(nv) if exact && nv != *ov => Status::Regression,
                Some(nv) if !exact => {
                    let limit =
                        (*ov as f64 * (1.0 + cfg.span_wall_rel)) + cfg.span_wall_abs_ns as f64;
                    if nv as f64 > limit { Status::Regression } else { Status::Ok }
                }
                Some(_) => Status::Ok,
                None => Status::Regression,
            };
            rep.findings.push(Finding {
                kind: "window.counter".into(),
                name: label,
                old: ov.to_string(),
                new: nv.map_or("-".into(), |v| v.to_string()),
                note: if status == Status::Regression {
                    "per-window counter diverged".into()
                } else {
                    String::new()
                },
                status,
            });
        }
        for (name, oh) in &of.hists {
            if cfg.ignored(name) {
                continue;
            }
            let label = format!("[{}] {}", of.epoch, name);
            match nf.hists.get(name) {
                Some(nh) => diff_one_histogram(&label, oh, nh, rep),
                None => rep.findings.push(Finding {
                    kind: "window.hist".into(),
                    name: label,
                    old: format!("n={}", oh.count()),
                    new: "-".into(),
                    note: "per-window histogram disappeared".into(),
                    status: Status::Regression,
                }),
            }
        }
    }
    for nf in nw.frames() {
        if ow.frames().all(|f| f.epoch != nf.epoch) {
            rep.findings.push(Finding {
                kind: "window.frame".into(),
                name: format!("epoch {}", nf.epoch),
                old: "-".into(),
                new: format!("{} counters", nf.counters.len()),
                note: "new frame (not in baseline ring)".into(),
                status: Status::Info,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn snap(build: impl Fn(&Recorder)) -> Snapshot {
        let r = Recorder::new_enabled();
        build(&r);
        r.snapshot()
    }

    #[test]
    fn self_diff_is_clean() {
        let s = snap(|r| {
            r.record_span("fit", 1000);
            r.record_span("fit/pair", 400);
            r.counter_add("pairs", 37);
            r.gauge_set("f1", 0.91);
            r.hist_observe("sim", Some(&[0.5, 1.0]), 0.7);
            r.register_stage("pair");
        });
        let rep = diff(&s, &s, &DiffConfig::default());
        assert!(rep.passed(), "{}", rep.render_table(true));
        assert!(!rep.findings.is_empty());
    }

    #[test]
    fn slowed_span_regresses_and_faster_improves() {
        let old = snap(|r| r.record_span("fit", 100_000_000));
        let slow = snap(|r| r.record_span("fit", 200_000_000));
        let fast = snap(|r| r.record_span("fit", 50_000_000));
        let rep = diff(&old, &slow, &DiffConfig::default());
        assert!(!rep.passed());
        assert_eq!(rep.regressions()[0].kind, "span.wall");
        let rep = diff(&old, &fast, &DiffConfig::default());
        assert!(rep.passed());
        assert!(rep.findings.iter().any(|f| f.status == Status::Improved));
    }

    #[test]
    fn absolute_floor_shields_tiny_spans() {
        // +100% but only 800ns absolute: under the 5ms floor, no gate.
        let old = snap(|r| r.record_span("tiny", 800));
        let new = snap(|r| r.record_span("tiny", 1_600));
        assert!(diff(&old, &new, &DiffConfig::default()).passed());
    }

    #[test]
    fn ignore_wall_skips_timing_entirely() {
        let old = snap(|r| r.record_span("fit", 1));
        let new = snap(|r| r.record_span("fit", 10_000_000_000));
        let cfg = DiffConfig { ignore_wall: true, ..DiffConfig::default() };
        let rep = diff(&old, &new, &cfg);
        assert!(rep.passed(), "{}", rep.render_table(true));
        assert!(rep.findings.iter().all(|f| f.kind != "span.wall"));
    }

    #[test]
    fn nanosecond_counters_follow_the_wall_policy() {
        // `*_ns` counters are elapsed time, not deterministic counts: they
        // get the span rel+abs thresholds, Improved when faster, and vanish
        // entirely under --ignore-wall.
        let old = snap(|r| r.counter_add("scorer.forward_ns", 100_000_000));
        let slow = snap(|r| r.counter_add("scorer.forward_ns", 200_000_000));
        let fast = snap(|r| r.counter_add("scorer.forward_ns", 90_000_000));
        let jitter = snap(|r| r.counter_add("scorer.forward_ns", 110_000_000));
        assert!(!diff(&old, &slow, &DiffConfig::default()).passed());
        assert!(diff(&old, &jitter, &DiffConfig::default()).passed());
        let rep = diff(&old, &fast, &DiffConfig::default());
        assert!(rep.passed());
        assert!(rep.findings.iter().any(|f| f.status == Status::Improved));
        let cfg = DiffConfig { ignore_wall: true, ..DiffConfig::default() };
        let rep = diff(&old, &slow, &cfg);
        assert!(rep.passed(), "{}", rep.render_table(true));
        assert!(rep.findings.iter().all(|f| f.name != "scorer.forward_ns"));
    }

    #[test]
    fn deterministic_counters_are_exact() {
        let old = snap(|r| r.counter_add("pairs", 37));
        let new = snap(|r| r.counter_add("pairs", 38));
        let rep = diff(&old, &new, &DiffConfig::default());
        assert!(!rep.passed());
        assert_eq!(rep.regressions()[0].name, "pairs");
    }

    #[test]
    fn dispatch_counters_are_ignored_by_default() {
        let old = snap(|r| r.counter_add("kernel.dispatch.avx2_fma", 10));
        let new = snap(|r| r.counter_add("kernel.dispatch.scalar", 10));
        assert!(diff(&old, &new, &DiffConfig::default()).passed());
    }

    #[test]
    fn missing_span_and_changed_count_regress() {
        let old = snap(|r| {
            r.record_span("fit", 10);
            r.record_span("fit/pair", 5);
            r.record_span("fit/pair", 5);
        });
        let new = snap(|r| {
            r.record_span("fit", 10);
            r.record_span("fit/pair", 5); // count 2 -> 1
        });
        let rep = diff(&old, &new, &DiffConfig { ignore_wall: true, ..DiffConfig::default() });
        assert!(rep.regressions().iter().any(|f| f.kind == "span.count"));
        let gone = snap(|r| r.record_span("fit", 10));
        let rep = diff(&old, &gone, &DiffConfig { ignore_wall: true, ..DiffConfig::default() });
        assert!(rep.regressions().iter().any(|f| f.kind == "span" && f.name == "fit/pair"));
    }

    #[test]
    fn histograms_compare_per_bucket() {
        // Same count and sum, shifted shape: summary stats alone would
        // pass; the per-bucket compare must not.
        let old = snap(|r| {
            r.hist_observe("sim", Some(&[1.0, 2.0]), 0.5);
            r.hist_observe("sim", Some(&[1.0, 2.0]), 2.5);
        });
        let new = snap(|r| {
            r.hist_observe("sim", Some(&[1.0, 2.0]), 1.5);
            r.hist_observe("sim", Some(&[1.0, 2.0]), 1.5);
        });
        assert_eq!(
            old.histogram("sim").unwrap().count(),
            new.histogram("sim").unwrap().count()
        );
        let rep = diff(&old, &new, &DiffConfig::default());
        let reg = rep.regressions();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].kind, "hist.bucket");
        assert!(reg[0].note.contains("bucket deltas"), "{}", reg[0].note);
    }

    #[test]
    fn hist_bound_mismatch_is_a_regression() {
        let old = snap(|r| r.hist_observe("sim", Some(&[1.0]), 0.5));
        let new = snap(|r| r.hist_observe("sim", Some(&[2.0]), 0.5));
        let rep = diff(&old, &new, &DiffConfig::default());
        assert!(rep.regressions().iter().any(|f| f.note.contains("boundaries differ")));
    }

    #[test]
    fn stage_going_silent_regresses() {
        let old = snap(|r| {
            r.register_stage("pair");
            r.record_span("fit/pair", 10);
        });
        let new = snap(|r| {
            r.register_stage("pair");
            r.record_span("fit/other", 10);
        });
        let rep = diff(&old, &new, &DiffConfig { ignore_wall: true, ..DiffConfig::default() });
        assert!(rep.regressions().iter().any(|f| f.kind == "stage" && f.name == "pair"));
    }

    #[test]
    fn memory_growth_gates_and_ignore_mem_skips() {
        let mk = |bytes: u64| {
            let mut s = snap(|r| {
                r.record_span_mem(
                    "fit",
                    10,
                    Some(MemStat { allocs: 10, alloc_bytes: bytes, ..Default::default() }),
                );
            });
            s.memory = Some(crate::recorder::MemorySection {
                unattributed: MemStat { allocs: 1, alloc_bytes: 64, ..Default::default() },
                live_bytes: 0,
                peak_live_bytes: bytes as i64,
            });
            s
        };
        let old = mk(1_000);
        let new = mk(2_000); // +100% > 25% threshold
        let cfg = DiffConfig { ignore_wall: true, ..DiffConfig::default() };
        let rep = diff(&old, &new, &cfg);
        assert!(rep.regressions().iter().any(|f| f.kind == "span.mem"));
        assert!(rep.regressions().iter().any(|f| f.kind == "memory.peak"));
        let cfg = DiffConfig { ignore_wall: true, ignore_mem: true, ..DiffConfig::default() };
        assert!(diff(&old, &new, &cfg).passed());
    }

    #[test]
    fn new_span_is_info_not_regression() {
        let old = snap(|r| r.record_span("fit", 10));
        let new = snap(|r| {
            r.record_span("fit", 10);
            r.record_span("fit/extra", 5);
        });
        let rep = diff(&old, &new, &DiffConfig { ignore_wall: true, ..DiffConfig::default() });
        assert!(rep.passed());
        assert!(rep.findings.iter().any(|f| f.status == Status::Info));
    }

    #[test]
    fn table_renders_summary_and_rows() {
        let old = snap(|r| r.counter_add("pairs", 1));
        let new = snap(|r| r.counter_add("pairs", 2));
        let rep = diff(&old, &new, &DiffConfig::default());
        let table = rep.render_table(false);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("1 regressions"), "{table}");
    }

    fn windowed_snap(build: impl Fn(&Recorder)) -> Snapshot {
        let r = Recorder::new_enabled();
        r.enable_windows(4);
        build(&r);
        r.snapshot()
    }

    #[test]
    fn identical_window_rings_pass() {
        let mk = || {
            windowed_snap(|r| {
                r.counter_add("classify.records", 5);
                r.advance_window();
                r.counter_add("classify.records", 3);
                r.hist_observe("margin", Some(&[0.1]), 0.05);
            })
        };
        let rep = diff(&mk(), &mk(), &DiffConfig::default());
        assert!(rep.passed(), "{}", rep.render_table(true));
        assert!(rep.findings.iter().any(|f| f.kind == "window.counter"));
    }

    #[test]
    fn diverged_window_frame_regresses() {
        let old = windowed_snap(|r| {
            r.counter_add("classify.records", 5);
            r.advance_window();
            r.counter_add("classify.records", 3);
        });
        let new = windowed_snap(|r| {
            r.counter_add("classify.records", 5);
            r.advance_window();
            r.counter_add("classify.records", 4); // frame 1 diverges
        });
        let rep = diff(&old, &new, &DiffConfig::default());
        let reg = rep.regressions();
        assert!(
            reg.iter().any(|f| f.kind == "window.counter" && f.name.contains("[1]")),
            "{}",
            rep.render_table(true)
        );
        // The lifetime totals also diverge, but the window finding must
        // name the frame that moved.
    }

    #[test]
    fn window_ring_shape_mismatch_regresses() {
        let old = windowed_snap(|r| r.advance_window());
        let new = windowed_snap(|_| ());
        let rep = diff(&old, &new, &DiffConfig::default());
        assert!(
            rep.regressions().iter().any(|f| f.kind == "windows"),
            "{}",
            rep.render_table(true)
        );
        // Windows on one side only is informational, not gating.
        let plain = snap(|_| ());
        let rep = diff(&new, &plain, &DiffConfig::default());
        assert!(rep.passed());
        assert!(rep.findings.iter().any(|f| f.kind == "windows" && f.status == Status::Info));
    }

    #[test]
    fn wrapped_rings_align_by_epoch() {
        let mk = |extra: u64| {
            windowed_snap(|r| {
                for i in 0..6u64 {
                    r.counter_add("tick", i + 1);
                    r.advance_window();
                }
                r.counter_add("tick", extra);
            })
        };
        let rep = diff(&mk(7), &mk(7), &DiffConfig::default());
        assert!(rep.passed(), "{}", rep.render_table(true));
        let rep = diff(&mk(7), &mk(9), &DiffConfig::default());
        assert!(rep.regressions().iter().any(|f| f.name.contains("[6] tick")));
    }

    #[test]
    fn drift_gauges_use_their_own_threshold() {
        let mk = |psi: f64| {
            snap(|r| {
                r.gauge_set("obs.drift.score.psi", psi);
                r.counter_add("obs.drift.checks", 1);
            })
        };
        let tight = diff(&mk(0.10), &mk(0.15), &DiffConfig::default());
        assert!(
            tight.regressions().iter().any(|f| f.kind == "gauge.drift"),
            "{}",
            tight.render_table(true)
        );
        let loose = DiffConfig { drift_rel: 1.0, ..DiffConfig::default() };
        assert!(diff(&mk(0.10), &mk(0.15), &loose).passed());
        // The alert counter stays a deterministic counter: any movement
        // gates regardless of drift_rel.
        let old = snap(|r| r.counter_add("obs.drift.trips", 0));
        let new = snap(|r| r.counter_add("obs.drift.trips", 1));
        assert!(!diff(&old, &new, &loose).passed());
    }
}
