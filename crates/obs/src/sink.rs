//! Snapshot sinks: where aggregated observability data goes at end of run.

use crate::manifest::Manifest;
use crate::recorder::Snapshot;
use std::io::{self, Write};
use std::path::PathBuf;

/// A destination for a finished [`Snapshot`].
pub trait Sink {
    /// Emits `snap` to the sink's destination.
    fn emit(&mut self, snap: &Snapshot) -> io::Result<()>;
}

/// Prints the human-readable summary (span tree + metric tables) to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&mut self, snap: &Snapshot) -> io::Result<()> {
        let mut err = io::stderr().lock();
        err.write_all(snap.render_text().as_bytes())
    }
}

/// Writes the snapshot as pretty-printed JSON to a file, creating parent
/// directories as needed. This is what produces `results/OBS_*.json`.
///
/// With a [`Manifest`] attached (the normal case since schema version 2),
/// the exported object leads with a `manifest` key carrying the run's
/// provenance; without one, the file is a bare version-1 snapshot.
#[derive(Debug)]
pub struct JsonFileSink {
    path: PathBuf,
    manifest: Option<Manifest>,
}

impl JsonFileSink {
    /// A sink writing to `path` without provenance (version-1 layout).
    pub fn new(path: impl Into<PathBuf>) -> JsonFileSink {
        JsonFileSink { path: path.into(), manifest: None }
    }

    /// Attaches the run's provenance header.
    pub fn with_manifest(mut self, manifest: Manifest) -> JsonFileSink {
        self.manifest = Some(manifest);
        self
    }

    /// The destination path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Sink for JsonFileSink {
    fn emit(&mut self, snap: &Snapshot) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let body = snap.to_json();
        let out = match &self.manifest {
            Some(m) => {
                let crate::json::Json::Obj(mut sections) = body else { unreachable!() };
                sections.insert(0, ("manifest".to_string(), m.to_json()));
                crate::json::Json::Obj(sections)
            }
            None => body,
        };
        std::fs::write(&self.path, out.pretty())
    }
}

/// Discards snapshots.
#[derive(Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&mut self, _snap: &Snapshot) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn json_file_sink_writes_pretty_json_and_creates_dirs() {
        let rec = Recorder::new_enabled();
        rec.record_span("fit", 1_000);
        rec.counter_add("c", 7);
        let dir = std::env::temp_dir().join("wym_obs_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("OBS_test.json");
        JsonFileSink::new(&path).emit(&rec.snapshot()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"fit\""));
        assert!(text.contains("\"c\": 7"));
        assert!(text.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_header_leads_the_exported_object() {
        let rec = Recorder::new_enabled();
        rec.record_span("fit", 1_000);
        let dir = std::env::temp_dir().join("wym_obs_sink_manifest_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("OBS_test.json");
        let m = Manifest::new("sink-test").with_seed(9);
        JsonFileSink::new(&path).with_manifest(m.clone()).emit(&rec.snapshot()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(Manifest::from_file_json(&parsed), Some(m));
        // `manifest` must be the first key so readers (and humans) see
        // provenance before data.
        let crate::json::Json::Obj(sections) = parsed else { panic!() };
        assert_eq!(sections[0].0, "manifest");
        // The body still parses as a snapshot.
        let snap = Snapshot::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap.span_count("fit"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn noop_sink_accepts_anything() {
        let rec = Recorder::new_enabled();
        rec.counter_add("c", 1);
        NoopSink.emit(&rec.snapshot()).unwrap();
    }
}
