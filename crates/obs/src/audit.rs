//! Decision audit log.
//!
//! The paper's promise is that every match verdict is explainable; this
//! module makes every verdict *accountable*: each `classify`/`explain`
//! emits a structured [`DecisionRecord`] — trace id, verdict, calibrated
//! score, distance-to-threshold margin, top-k unit impacts, model
//! fingerprint, optional wall/alloc cost — into the installed [`AuditLog`],
//! which serializes to append-only JSONL.
//!
//! **Determinism.** The log's ordering key is the *sequence number*, which
//! callers pin to input order via [`scope_seq`] around each item (that is
//! what `wym-par` workers run under, so a parallel classify emits the same
//! log as a sequential one). Serialization sorts by sequence, sampling is
//! `seq % sample_every == 0` (modular, never random), and wall/alloc cost —
//! the only nondeterministic fields — stay `None` unless
//! [`AuditOptions::include_cost`] opts in. Result: with cost off, the JSONL
//! bytes and their FNV checksum are bit-identical across kernels and thread
//! counts, which the smoke gate asserts.
//!
//! **Installation** mirrors the recorder: a thread-local override
//! ([`with_audit`], captured into [`crate::ObsContext`] so workers inherit
//! it) over a process-wide slot ([`install_global`]). Emission with no log
//! installed is a no-op costing one thread-local read.
//!
//! **One record per decision.** `explain` computes its verdict by calling
//! the classify path internally; the outer caller wraps that inner call in
//! a [`suppress`] scope so a decision never double-logs. The surviving
//! record is the richer one (kind `explain`, with impacts).

use crate::json::Json;
use crate::manifest::fnv1a;
use std::cell::{Cell, RefCell};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Decision kinds emitted by the pipeline.
pub const KIND_CLASSIFY: &str = "classify";
/// See [`KIND_CLASSIFY`].
pub const KIND_EXPLAIN: &str = "explain";

/// How many unit impacts a record retains (largest `|impact|` first).
pub const TOP_K_IMPACTS: usize = 3;

/// Measured cost of one decision. Wall time and allocation are inherently
/// run-dependent, so cost is only recorded under
/// [`AuditOptions::include_cost`] — never in bit-identity-checked logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionCost {
    /// Wall-clock nanoseconds spent producing the decision.
    pub wall_ns: u64,
    /// Bytes allocated while producing it (0 when profiling is off).
    pub alloc_bytes: u64,
}

/// One audited decision.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Caller-assigned input position; the deterministic ordering key.
    pub seq: u64,
    /// FNV-1a over `model_fnv ‖ seq ‖ record_id` — stable across runs of
    /// the same model over the same input, unique within a run.
    pub trace: u64,
    /// The classified pair's record id.
    pub record_id: u64,
    /// [`KIND_CLASSIFY`] or [`KIND_EXPLAIN`].
    pub kind: String,
    /// The match verdict.
    pub verdict: bool,
    /// Calibrated match probability.
    pub score: f32,
    /// Distance to the 0.5 decision threshold (`score − 0.5`); the sign
    /// restates the verdict, the magnitude says how close the call was.
    pub margin: f32,
    /// Total decision units for the pair.
    pub units: u32,
    /// How many of those units paired.
    pub paired_units: u32,
    /// Up to [`TOP_K_IMPACTS`] `(attribute, impact)` pairs, largest
    /// `|impact|` first. Empty for bare classify decisions.
    pub top_impacts: Vec<(String, f32)>,
    /// Content fingerprint of the deciding model.
    pub model_fnv: u64,
    /// Optional measured cost (see [`DecisionCost`]).
    pub cost: Option<DecisionCost>,
}

impl DecisionRecord {
    /// The record as one JSONL object. `f32` fields widen to `f64`
    /// (exactly) and render shortest-exact, so serialization is
    /// bit-faithful and deterministic.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq", Json::UInt(self.seq)),
            ("trace", Json::str(format!("{:016x}", self.trace))),
            ("record_id", Json::UInt(self.record_id)),
            ("kind", Json::str(&self.kind)),
            ("verdict", Json::Bool(self.verdict)),
            ("score", Json::Num(self.score as f64)),
            ("margin", Json::Num(self.margin as f64)),
            ("units", Json::UInt(self.units as u64)),
            ("paired_units", Json::UInt(self.paired_units as u64)),
            (
                "top_impacts",
                Json::Arr(
                    self.top_impacts
                        .iter()
                        .map(|(attr, impact)| {
                            Json::obj(vec![
                                ("attribute", Json::str(attr)),
                                ("impact", Json::Num(*impact as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("model_fnv", Json::str(format!("{:016x}", self.model_fnv))),
        ];
        if let Some(cost) = &self.cost {
            fields.push((
                "cost",
                Json::obj(vec![
                    ("wall_ns", Json::UInt(cost.wall_ns)),
                    ("alloc_bytes", Json::UInt(cost.alloc_bytes)),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

/// Runs `f` and measures its cost: wall time always, allocator activity
/// when memory profiling is enabled (0 otherwise). The helper emitters use
/// under [`AuditOptions::include_cost`]; the measurement itself is why
/// cost-bearing logs are not bit-comparable.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, DecisionCost) {
    let cell = crate::prof::enabled().then(|| {
        let cell = Arc::new(crate::prof::MemCell::new());
        let scope = crate::prof::CellScope::install(Some(Arc::clone(&cell)));
        (cell, scope)
    });
    let t0 = std::time::Instant::now();
    let out = f();
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let alloc_bytes = cell.map_or(0, |(cell, scope)| {
        drop(scope); // restore the parent's charge target before reading
        cell.stat().alloc_bytes
    });
    (out, DecisionCost { wall_ns, alloc_bytes })
}

/// The deterministic per-decision trace id.
pub fn trace_id(model_fnv: u64, seq: u64, record_id: u64) -> u64 {
    let mut bytes = [0u8; 24];
    bytes[..8].copy_from_slice(&model_fnv.to_le_bytes());
    bytes[8..16].copy_from_slice(&seq.to_le_bytes());
    bytes[16..].copy_from_slice(&record_id.to_le_bytes());
    fnv1a(&bytes)
}

/// Audit-log configuration.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Keep decisions whose `seq % sample_every == 0`. 1 keeps everything;
    /// 0 is treated as 1. Modular sampling keeps the retained set
    /// deterministic — the same decisions survive in every run.
    pub sample_every: u64,
    /// Record wall/alloc cost per decision. Off by default because cost is
    /// the one run-dependent field: logs meant to be compared bit-for-bit
    /// across kernels and thread counts must leave this off.
    pub include_cost: bool,
    /// Content fingerprint of the model making the decisions (stamped into
    /// every record and folded into trace ids).
    pub model_fnv: u64,
}

impl Default for AuditOptions {
    fn default() -> AuditOptions {
        AuditOptions { sample_every: 1, include_cost: false, model_fnv: 0 }
    }
}

/// An in-memory decision log, shared by reference between the emitting
/// pipeline (possibly many threads) and whoever flushes it.
pub struct AuditLog {
    opts: AuditOptions,
    records: Mutex<Vec<DecisionRecord>>,
    /// Sequence source for emissions outside any [`scope_seq`] — a plain
    /// arrival counter, deterministic only for sequential callers.
    fallback_seq: AtomicU64,
}

impl AuditLog {
    /// An empty log under `opts`.
    pub fn new(opts: AuditOptions) -> AuditLog {
        AuditLog { opts, records: Mutex::new(Vec::new()), fallback_seq: AtomicU64::new(0) }
    }

    /// The log's configuration.
    pub fn opts(&self) -> &AuditOptions {
        &self.opts
    }

    /// Poisoning-tolerant lock: a worker that panicked mid-push left at
    /// worst a complete-or-absent record (push is not partial), so the data
    /// stays usable — same policy as the metrics recorder.
    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<DecisionRecord>> {
        self.records.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Emits one decision. No-op inside a [`suppress`] scope or when the
    /// sequence number is sampled out. The sequence comes from the ambient
    /// [`scope_seq`] when one is active, else from an arrival counter.
    #[allow(clippy::too_many_arguments)]
    pub fn emit(
        &self,
        kind: &str,
        record_id: u64,
        verdict: bool,
        score: f32,
        units: u32,
        paired_units: u32,
        top_impacts: Vec<(String, f32)>,
        cost: Option<DecisionCost>,
    ) {
        if suppressed() {
            return;
        }
        let seq = SEQ.with(|s| match s.get() {
            Some(pinned) => pinned,
            None => self.fallback_seq.fetch_add(1, Ordering::Relaxed),
        });
        let every = self.opts.sample_every.max(1);
        if !seq.is_multiple_of(every) {
            return;
        }
        // Mirror the decision into the flight recorder's event ring (a
        // wall-clocked summary; the deterministic record below is the one
        // the bit-identity gate checks).
        crate::ring::decision_event(kind, verdict, score);
        let record = DecisionRecord {
            seq,
            trace: trace_id(self.opts.model_fnv, seq, record_id),
            record_id,
            kind: kind.to_string(),
            verdict,
            score,
            margin: score - 0.5,
            units,
            paired_units,
            top_impacts,
            model_fnv: self.opts.model_fnv,
            cost: if self.opts.include_cost { cost } else { None },
        };
        self.lock().push(record);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained records sorted by sequence number — the deterministic
    /// order, whatever interleaving the emitting threads ran in.
    pub fn sorted(&self) -> Vec<DecisionRecord> {
        let mut records = self.lock().clone();
        records.sort_by_key(|r| r.seq);
        records
    }

    /// Removes and returns all records, sorted by sequence number.
    pub fn drain_sorted(&self) -> Vec<DecisionRecord> {
        let mut records = std::mem::take(&mut *self.lock());
        records.sort_by_key(|r| r.seq);
        records
    }

    /// The log as JSONL (one compact object per line, sequence order).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.sorted() {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }

    /// FNV-1a checksum of [`AuditLog::to_jsonl`] — the value the smoke gate
    /// compares across kernels and thread counts.
    pub fn checksum(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }

    /// Appends the log as JSONL to `path` (created if absent, never
    /// truncated — the sink is append-only so restarts extend history).
    /// Returns the number of records written.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<usize> {
        let jsonl = self.to_jsonl();
        let n = jsonl.lines().count();
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(jsonl.as_bytes())?;
        Ok(n)
    }
}

static GLOBAL: Mutex<Option<Arc<AuditLog>>> = Mutex::new(None);

thread_local! {
    /// Per-thread audit-log override (tests, propagated worker contexts).
    static LOCAL: RefCell<Option<Arc<AuditLog>>> = const { RefCell::new(None) };
    /// Sequence number pinned by the innermost [`scope_seq`], if any.
    static SEQ: Cell<Option<u64>> = const { Cell::new(None) };
    /// Suppression depth (&gt; 0 = emissions dropped).
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

fn global_slot() -> Option<Arc<AuditLog>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The audit log emissions on this thread go to, if one is installed:
/// the thread-local override, else the process-wide slot.
pub fn active() -> Option<Arc<AuditLog>> {
    LOCAL.with(|l| l.borrow().clone()).or_else(global_slot)
}

/// Installs `log` as the process-wide audit log (returns the previous one).
pub fn install_global(log: Arc<AuditLog>) -> Option<Arc<AuditLog>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).replace(log)
}

/// Clears the process-wide audit log (returns it).
pub fn clear_global() -> Option<Arc<AuditLog>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// Runs `f` with `log` as this thread's audit log (restored afterwards,
/// even on panic). The test-isolation twin of [`crate::with_recorder`].
pub fn with_audit<R>(log: Arc<AuditLog>, f: impl FnOnce() -> R) -> R {
    let _restore = install_local(Some(log));
    f()
}

/// Captures this thread's override for [`crate::ObsContext`].
pub(crate) fn capture_local() -> Option<Arc<AuditLog>> {
    LOCAL.with(|l| l.borrow().clone())
}

/// RAII-installs a thread-local override (for [`crate::in_context`]).
pub(crate) fn install_local(log: Option<Arc<AuditLog>>) -> LocalRestore {
    LocalRestore(LOCAL.with(|l| std::mem::replace(&mut *l.borrow_mut(), log)))
}

pub(crate) struct LocalRestore(Option<Arc<AuditLog>>);

impl Drop for LocalRestore {
    fn drop(&mut self) {
        let prev = self.0.take();
        LOCAL.with(|l| *l.borrow_mut() = prev);
    }
}

/// Pins the audit sequence number for the extent of the returned guard.
/// Callers that know an item's input position (a batch loop, a `wym-par`
/// worker closure) wrap each item so emitted records order by input, not by
/// thread arrival. Nests; the previous pin is restored on drop.
#[must_use = "the pin lasts only while the guard lives"]
pub fn scope_seq(seq: u64) -> SeqScope {
    SeqScope { prev: SEQ.with(|s| s.replace(Some(seq))), _thread_bound: std::marker::PhantomData }
}

/// Guard of [`scope_seq`].
pub struct SeqScope {
    prev: Option<u64>,
    _thread_bound: std::marker::PhantomData<*const ()>,
}

impl Drop for SeqScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        SEQ.with(|s| s.set(prev));
    }
}

/// Drops audit emissions on this thread for the extent of the returned
/// guard. The explain path wraps its internal classify call with this so a
/// decision produces exactly one record.
#[must_use = "suppression lasts only while the guard lives"]
pub fn suppress() -> SuppressScope {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressScope { _thread_bound: std::marker::PhantomData }
}

/// Guard of [`suppress`].
pub struct SuppressScope {
    _thread_bound: std::marker::PhantomData<*const ()>,
}

impl Drop for SuppressScope {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Whether emissions on this thread are currently suppressed.
pub fn suppressed() -> bool {
    SUPPRESS.with(|s| s.get()) > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emit_plain(log: &AuditLog, seq: u64, record_id: u64, score: f32) {
        let _pin = scope_seq(seq);
        log.emit(KIND_CLASSIFY, record_id, score >= 0.5, score, 4, 2, Vec::new(), None);
    }

    #[test]
    fn records_sort_by_sequence_not_arrival() {
        let log = AuditLog::new(AuditOptions::default());
        for seq in [3u64, 0, 2, 1] {
            emit_plain(&log, seq, 100 + seq, 0.9);
        }
        let seqs: Vec<u64> = log.sorted().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        // The JSONL checksum is therefore arrival-order independent.
        let twin = AuditLog::new(AuditOptions::default());
        for seq in [0u64, 1, 2, 3] {
            emit_plain(&twin, seq, 100 + seq, 0.9);
        }
        assert_eq!(log.checksum(), twin.checksum());
    }

    #[test]
    fn modular_sampling_keeps_the_same_decisions_every_run() {
        let log = AuditLog::new(AuditOptions { sample_every: 3, ..AuditOptions::default() });
        for seq in 0..10u64 {
            emit_plain(&log, seq, seq, 0.7);
        }
        let seqs: Vec<u64> = log.sorted().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 3, 6, 9]);
        // sample_every 0 behaves as 1 (keep everything) instead of
        // dividing by zero.
        let all = AuditLog::new(AuditOptions { sample_every: 0, ..AuditOptions::default() });
        emit_plain(&all, 5, 5, 0.7);
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn margin_and_trace_are_derived_deterministically() {
        let opts = AuditOptions { model_fnv: 0xabcd, ..AuditOptions::default() };
        let log = AuditLog::new(opts);
        {
            let _pin = scope_seq(7);
            log.emit(KIND_EXPLAIN, 42, true, 0.75, 6, 3, vec![("title".into(), 1.5)], None);
        }
        let rec = &log.sorted()[0];
        assert_eq!(rec.margin, 0.75f32 - 0.5f32);
        assert_eq!(rec.trace, trace_id(0xabcd, 7, 42));
        assert_eq!(rec.model_fnv, 0xabcd);
        let line = rec.to_json().render();
        for needle in ["\"seq\":7", "\"kind\":\"explain\"", "\"attribute\":\"title\""] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!line.contains("cost"), "cost must be absent unless opted in");
    }

    #[test]
    fn cost_is_dropped_unless_opted_in() {
        let cost = DecisionCost { wall_ns: 123, alloc_bytes: 456 };
        let off = AuditLog::new(AuditOptions::default());
        {
            let _pin = scope_seq(0);
            off.emit(KIND_CLASSIFY, 1, true, 0.9, 1, 1, Vec::new(), Some(cost.clone()));
        }
        assert_eq!(off.sorted()[0].cost, None);
        let on = AuditLog::new(AuditOptions { include_cost: true, ..AuditOptions::default() });
        {
            let _pin = scope_seq(0);
            on.emit(KIND_CLASSIFY, 1, true, 0.9, 1, 1, Vec::new(), Some(cost.clone()));
        }
        assert_eq!(on.sorted()[0].cost, Some(cost));
    }

    #[test]
    fn suppression_drops_emissions_and_nests() {
        let log = AuditLog::new(AuditOptions::default());
        {
            let _outer = suppress();
            {
                let _inner = suppress();
                emit_plain(&log, 0, 0, 0.9);
            }
            assert!(suppressed(), "outer scope still active");
            emit_plain(&log, 1, 1, 0.9);
        }
        assert!(!suppressed());
        emit_plain(&log, 2, 2, 0.9);
        let seqs: Vec<u64> = log.sorted().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2]);
    }

    #[test]
    fn fallback_sequence_counts_arrivals() {
        let log = AuditLog::new(AuditOptions::default());
        log.emit(KIND_CLASSIFY, 10, true, 0.9, 1, 1, Vec::new(), None);
        log.emit(KIND_CLASSIFY, 11, false, 0.1, 1, 0, Vec::new(), None);
        let seqs: Vec<u64> = log.sorted().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn with_audit_scopes_the_active_log() {
        assert!(active().is_none() || global_slot().is_some());
        let log = Arc::new(AuditLog::new(AuditOptions::default()));
        with_audit(Arc::clone(&log), || {
            assert!(active().is_some());
            active().unwrap().emit(KIND_CLASSIFY, 1, true, 0.8, 1, 1, Vec::new(), None);
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn drain_empties_the_log() {
        let log = AuditLog::new(AuditOptions::default());
        emit_plain(&log, 0, 0, 0.6);
        assert_eq!(log.drain_sorted().len(), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn write_jsonl_appends_rather_than_truncates() {
        let dir = std::env::temp_dir().join(format!("wym_audit_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        let _ = std::fs::remove_file(&path);
        let log = AuditLog::new(AuditOptions::default());
        emit_plain(&log, 0, 0, 0.6);
        log.write_jsonl(&path).unwrap();
        log.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "second write must append");
        let _ = std::fs::remove_file(&path);
    }
}
