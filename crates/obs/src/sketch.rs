//! Drift sentinels: training-time sketches and PSI divergence.
//!
//! A model frozen at train time embodies a distribution — of calibrated
//! scores, of how many units actually pair, of which attributes contribute
//! units. When live traffic departs from that distribution the model's
//! calibration is no longer trustworthy, and the monitoring loop should say
//! so *before* accuracy metrics (which need labels nobody has online) can.
//!
//! [`ModelSketch`] is the compact summary both sides use: a fixed-bucket
//! score histogram, a pairing hit-rate histogram, and a categorical
//! unit-class mix. The trainer freezes one into the WYMA artifact as the
//! `sketch` section; a serving loop builds another over live decisions and
//! calls [`ModelSketch::compare`], which computes a Population Stability
//! Index per component:
//!
//! ```text
//! PSI = Σ_i (p_i − q_i) · ln(p_i / q_i)
//! ```
//!
//! with half-a-count (Jeffreys) smoothing so empty buckets never divide by
//! zero and small samples don't alarm spuriously. The
//! conventional reading: `< 0.1` stable, `0.1–0.2` drifting, `> 0.2` act —
//! [`DRIFT_TRIP_PSI`] uses 0.2. [`DriftReport::publish`] mirrors the result
//! into `obs.drift.*` gauges and alert counters so the exposition layer
//! (Prometheus text, `obs_diff` baselines) sees exactly what the report
//! says.
//!
//! Everything here is integer bucket counts over bit-identical scores, so
//! sketches — and therefore PSI values — are deterministic across kernels
//! and thread counts like the rest of the workspace.

use crate::hist::Histogram;
use crate::json::Json;
use crate::recorder::{as_f64, as_u64};
use std::collections::BTreeMap;

/// PSI at or above this trips the sentinel (the conventional 0.2 "act"
/// threshold).
pub const DRIFT_TRIP_PSI: f64 = 0.2;

/// Smoothing mass added to every bucket count (Jeffreys prior) so PSI
/// stays finite — and *calibrated* — when one side has an empty bucket the
/// other populates. A vanishing epsilon would make such buckets contribute
/// `p·ln(p/ε)` ≈ 14·p, tripping the sentinel on routine small-sample
/// wobble; half a count keeps the log-ratio bounded by the actual sample
/// sizes.
const PSI_SMOOTH: f64 = 0.5;

/// Score-histogram boundaries: 0.05 steps over the probability range, so
/// twenty buckets resolve calibration shifts near either margin.
pub fn score_bounds() -> Vec<f64> {
    (1..20).map(|i| i as f64 * 0.05).collect()
}

/// Pairing hit-rate boundaries: 0.1 steps over the unit-pairing fraction.
pub fn pair_rate_bounds() -> Vec<f64> {
    (1..10).map(|i| i as f64 * 0.1).collect()
}

/// A compact streaming summary of a decision stream: score distribution,
/// pairing hit-rate distribution, and unit-class (attribute) mix.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSketch {
    scores: Histogram,
    pair_rate: Histogram,
    unit_mix: BTreeMap<String, u64>,
    n: u64,
}

impl Default for ModelSketch {
    fn default() -> ModelSketch {
        ModelSketch::new()
    }
}

impl ModelSketch {
    /// An empty sketch over the standard boundaries.
    pub fn new() -> ModelSketch {
        ModelSketch {
            scores: Histogram::new(&score_bounds()),
            pair_rate: Histogram::new(&pair_rate_bounds()),
            unit_mix: BTreeMap::new(),
            n: 0,
        }
    }

    /// Absorbs one decision: its calibrated score, the fraction of its
    /// decision units that paired, and the attribute of every unit.
    pub fn observe<'a>(
        &mut self,
        score: f32,
        paired_frac: f64,
        unit_attrs: impl IntoIterator<Item = &'a str>,
    ) {
        self.scores.observe(score as f64);
        self.pair_rate.observe(paired_frac);
        for attr in unit_attrs {
            *self.unit_mix.entry(attr.to_string()).or_insert(0) += 1;
        }
        self.n += 1;
    }

    /// Number of decisions absorbed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the sketch has absorbed nothing.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The score histogram.
    pub fn scores(&self) -> &Histogram {
        &self.scores
    }

    /// The pairing hit-rate histogram.
    pub fn pair_rate(&self) -> &Histogram {
        &self.pair_rate
    }

    /// Unit count per attribute.
    pub fn unit_mix(&self) -> &BTreeMap<String, u64> {
        &self.unit_mix
    }

    /// Folds `other` into `self` (per-bucket sums, key-wise mix sums).
    pub fn merge(&mut self, other: &ModelSketch) {
        self.scores.merge(&other.scores);
        self.pair_rate.merge(&other.pair_rate);
        for (k, v) in &other.unit_mix {
            *self.unit_mix.entry(k.clone()).or_insert(0) += v;
        }
        self.n += other.n;
    }

    /// PSI of `live` against this baseline, per component. Components in
    /// stable order: `score`, `pair_rate`, `unit_mix`.
    pub fn compare(&self, live: &ModelSketch) -> DriftReport {
        let components = vec![
            (
                "score".to_string(),
                psi(self.scores.counts(), live.scores.counts()),
            ),
            (
                "pair_rate".to_string(),
                psi(self.pair_rate.counts(), live.pair_rate.counts()),
            ),
            (
                "unit_mix".to_string(),
                psi_categorical(&self.unit_mix, &live.unit_mix),
            ),
        ];
        let max_psi = components.iter().map(|(_, p)| *p).fold(0.0f64, f64::max);
        DriftReport {
            tripped: max_psi >= DRIFT_TRIP_PSI,
            baseline_n: self.n,
            live_n: live.n,
            components,
            max_psi,
        }
    }

    /// The sketch as the JSON object stored in the artifact's `sketch`
    /// section and in decision reports.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("n", Json::UInt(self.n)),
            ("scores", hist_to_json(&self.scores)),
            ("pair_rate", hist_to_json(&self.pair_rate)),
            (
                "unit_mix",
                Json::Obj(
                    self.unit_mix
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a sketch back out of its [`ModelSketch::to_json`] form.
    pub fn from_json(v: &Json) -> Result<ModelSketch, String> {
        let Json::Obj(fields) = v else {
            return Err("sketch must be an object".to_string());
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let n = get("n").and_then(as_u64).ok_or("sketch missing n")?;
        let scores = hist_from_json(get("scores").ok_or("sketch missing scores")?)?;
        let pair_rate = hist_from_json(get("pair_rate").ok_or("sketch missing pair_rate")?)?;
        let mut unit_mix = BTreeMap::new();
        if let Some(Json::Obj(mix)) = get("unit_mix") {
            for (k, v) in mix {
                unit_mix.insert(k.clone(), as_u64(v).ok_or("bad unit_mix count")?);
            }
        }
        Ok(ModelSketch { scores, pair_rate, unit_mix, n })
    }
}

/// One drift check: PSI per component against a baseline sketch.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// `(component, psi)` in stable order.
    pub components: Vec<(String, f64)>,
    /// Largest component PSI.
    pub max_psi: f64,
    /// Whether `max_psi` crossed [`DRIFT_TRIP_PSI`].
    pub tripped: bool,
    /// Decisions in the baseline sketch.
    pub baseline_n: u64,
    /// Decisions in the live sketch.
    pub live_n: u64,
}

impl DriftReport {
    /// One-line human rendering, e.g.
    /// `ALERT max_psi=0.41 (score=0.41 pair_rate=0.02 unit_mix=0.00; live n=200 vs baseline n=800)`.
    pub fn render(&self) -> String {
        let comps = self
            .components
            .iter()
            .map(|(k, p)| format!("{k}={p:.3}"))
            .collect::<Vec<_>>()
            .join(" ");
        format!(
            "{} max_psi={:.3} ({comps}; live n={} vs baseline n={})",
            if self.tripped { "ALERT" } else { "OK" },
            self.max_psi,
            self.live_n,
            self.baseline_n
        )
    }

    /// Mirrors the report into the active recorder: an
    /// `obs.drift.<component>.psi` gauge per component, one
    /// `obs.drift.checks` tick, and an `obs.drift.trips` tick when the
    /// sentinel fired.
    pub fn publish(&self) {
        for (k, p) in &self.components {
            crate::gauge_set(&format!("obs.drift.{k}.psi"), *p);
        }
        crate::counter_add("obs.drift.checks", 1);
        if self.tripped {
            crate::counter_add("obs.drift.trips", 1);
        }
    }
}

/// Smoothed PSI over two aligned count vectors.
fn psi(p_counts: &[u64], q_counts: &[u64]) -> f64 {
    debug_assert_eq!(p_counts.len(), q_counts.len());
    let k = p_counts.len() as f64;
    let tp: u64 = p_counts.iter().sum();
    let tq: u64 = q_counts.iter().sum();
    let (dp, dq) = (tp as f64 + PSI_SMOOTH * k, tq as f64 + PSI_SMOOTH * k);
    p_counts
        .iter()
        .zip(q_counts)
        .map(|(&cp, &cq)| {
            let p = (cp as f64 + PSI_SMOOTH) / dp;
            let q = (cq as f64 + PSI_SMOOTH) / dq;
            (p - q) * (p / q).ln()
        })
        .sum()
}

/// Smoothed PSI over two categorical count maps, aligned on the key union
/// (a class only one side ever saw still contributes divergence).
fn psi_categorical(p: &BTreeMap<String, u64>, q: &BTreeMap<String, u64>) -> f64 {
    let keys: std::collections::BTreeSet<&String> = p.keys().chain(q.keys()).collect();
    if keys.is_empty() {
        return 0.0;
    }
    let pv: Vec<u64> = keys.iter().map(|k| p.get(*k).copied().unwrap_or(0)).collect();
    let qv: Vec<u64> = keys.iter().map(|k| q.get(*k).copied().unwrap_or(0)).collect();
    psi(&pv, &qv)
}

fn hist_to_json(h: &Histogram) -> Json {
    Json::obj(vec![
        (
            "bounds",
            Json::Arr(h.bounds().iter().map(|&b| Json::Num(b)).collect()),
        ),
        (
            "counts",
            Json::Arr(h.counts().iter().map(|&c| Json::UInt(c)).collect()),
        ),
        ("sum", Json::Num(h.sum())),
        ("min", if h.count() == 0 { Json::Null } else { Json::Num(h.min()) }),
        ("max", if h.count() == 0 { Json::Null } else { Json::Num(h.max()) }),
    ])
}

fn hist_from_json(v: &Json) -> Result<Histogram, String> {
    let Json::Obj(fields) = v else {
        return Err("sketch histogram must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let Some(Json::Arr(bounds)) = get("bounds") else {
        return Err("sketch histogram missing bounds".to_string());
    };
    let Some(Json::Arr(counts)) = get("counts") else {
        return Err("sketch histogram missing counts".to_string());
    };
    let bounds: Vec<f64> =
        bounds.iter().map(|b| as_f64(b).ok_or("bad bound")).collect::<Result<_, _>>()?;
    let counts: Vec<u64> =
        counts.iter().map(|c| as_u64(c).ok_or("bad count")).collect::<Result<_, _>>()?;
    Histogram::from_parts(
        &bounds,
        &counts,
        get("sum").and_then(as_f64).unwrap_or(0.0),
        get("min").and_then(as_f64).unwrap_or(f64::INFINITY),
        get("max").and_then(as_f64).unwrap_or(f64::NEG_INFINITY),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(scores: &[f32], attr: &str) -> ModelSketch {
        let mut s = ModelSketch::new();
        for &v in scores {
            s.observe(v, 0.5, [attr]);
        }
        s
    }

    #[test]
    fn identical_streams_do_not_trip() {
        let base = sketch_of(&[0.1, 0.2, 0.8, 0.9, 0.55], "title");
        let report = base.compare(&base.clone());
        assert!(report.max_psi < 1e-9, "self-PSI must be ~0, got {}", report.max_psi);
        assert!(!report.tripped);
        assert_eq!(report.components.len(), 3);
    }

    #[test]
    fn shifted_scores_trip_the_sentinel() {
        let base = sketch_of(&[0.05, 0.1, 0.12, 0.15, 0.08], "title");
        let live = sketch_of(&[0.85, 0.9, 0.92, 0.95, 0.88], "title");
        let report = base.compare(&live);
        assert!(report.tripped, "opposite score mass must trip: {}", report.render());
        assert_eq!(report.components[0].0, "score");
        assert!(report.components[0].1 >= DRIFT_TRIP_PSI);
    }

    #[test]
    fn unit_mix_shift_is_its_own_component() {
        let base = sketch_of(&[0.5; 20], "title");
        let live = sketch_of(&[0.5; 20], "brand");
        let report = base.compare(&live);
        let mix = report
            .components
            .iter()
            .find(|(k, _)| k == "unit_mix")
            .map(|(_, p)| *p)
            .unwrap();
        assert!(mix >= DRIFT_TRIP_PSI, "disjoint attribute mixes must diverge, got {mix}");
    }

    #[test]
    fn empty_sketches_compare_quietly() {
        let report = ModelSketch::new().compare(&ModelSketch::new());
        assert!(report.max_psi.abs() < 1e-9);
        assert!(!report.tripped);
    }

    #[test]
    fn merge_equals_single_pass() {
        let mut a = sketch_of(&[0.2, 0.4], "title");
        let b = sketch_of(&[0.6, 0.8], "brand");
        a.merge(&b);
        let mut whole = ModelSketch::new();
        for (v, attr) in [(0.2, "title"), (0.4, "title"), (0.6, "brand"), (0.8, "brand")] {
            whole.observe(v, 0.5, [attr]);
        }
        // Bucket counts and mixes match exactly; sums only to rounding
        // (merge associates the f64 additions differently).
        assert_eq!(a.scores().counts(), whole.scores().counts());
        assert_eq!(a.pair_rate().counts(), whole.pair_rate().counts());
        assert_eq!(a.unit_mix(), whole.unit_mix());
        assert_eq!(a.len(), 4);
        assert!((a.scores().sum() - whole.scores().sum()).abs() < 1e-9);
    }

    #[test]
    fn json_round_trip_preserves_counts() {
        let s = sketch_of(&[0.1, 0.6, 0.6, 0.97], "name");
        let json = s.to_json();
        let back = ModelSketch::from_json(&json).unwrap();
        assert_eq!(back.scores().counts(), s.scores().counts());
        assert_eq!(back.unit_mix(), s.unit_mix());
        assert_eq!(back.len(), s.len());
        // PSI against the round-tripped twin is still zero.
        assert!(s.compare(&back).max_psi < 1e-9);
        // And via rendered text, the artifact read path.
        let reparsed = crate::json::parse(&json.render()).unwrap();
        assert!(ModelSketch::from_json(&reparsed).is_ok());
    }

    #[test]
    fn render_names_every_component() {
        let base = sketch_of(&[0.1], "a");
        let r = base.compare(&sketch_of(&[0.9], "a")).render();
        for needle in ["score=", "pair_rate=", "unit_mix=", "max_psi="] {
            assert!(r.contains(needle), "missing {needle} in {r}");
        }
    }
}
