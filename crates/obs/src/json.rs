//! A minimal JSON value tree and printer.
//!
//! `wym-obs` is dependency-free, so its sinks carry their own JSON writer
//! instead of pulling in the workspace's vendored serde. The float and
//! string formatting deliberately mirrors `vendor/serde_json` (integral
//! floats keep a `.0` marker, non-finite floats print as `null`, control
//! characters are `\u` escaped) so files written by either serializer look
//! alike and existing JSON consumers keep working.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters can exceed `i64`).
    UInt(u64),
    /// Float.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering (2-space indent), newline-terminated.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Num(n) if !n.is_finite() => out.push_str("null"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                write_items(out, items.len(), indent, depth, |out, i, ind, d| {
                    items[i].write(out, ind, d);
                });
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                write_items(out, pairs.len(), indent, depth, |out, i, ind, d| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, ind, d);
                });
                out.push('}');
            }
        }
    }
}

fn write_items(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        write_item(out, i, indent, depth + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * depth));
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_like_serde_json() {
        assert_eq!(Json::Num(2.0).render(), "2.0", "integral floats keep .0");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Null.render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name", Json::str("wym")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"wym"}"#);
    }

    #[test]
    fn pretty_indents_and_terminates_with_newline() {
        let v = Json::obj(vec![("a", Json::Int(1))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1\n}\n");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
    }
}
