//! A minimal JSON value tree and printer.
//!
//! `wym-obs` is dependency-free, so its sinks carry their own JSON writer
//! instead of pulling in the workspace's vendored serde. The float and
//! string formatting deliberately mirrors `vendor/serde_json` (integral
//! floats keep a `.0` marker, non-finite floats print as `null`, control
//! characters are `\u` escaped) so files written by either serializer look
//! alike and existing JSON consumers keep working.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (counters can exceed `i64`).
    UInt(u64),
    /// Float.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering (2-space indent), newline-terminated.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Num(n) if !n.is_finite() => out.push_str("null"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{n:.1}"));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                write_items(out, items.len(), indent, depth, |out, i, ind, d| {
                    items[i].write(out, ind, d);
                });
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                write_items(out, pairs.len(), indent, depth, |out, i, ind, d| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, ind, d);
                });
                out.push('}');
            }
        }
    }
}

fn write_items(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i, indent, depth + 1);
    }
    if len > 0 {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * depth));
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Parses a JSON document into a [`Json`] tree — the read half of this
/// module, used by `obs_diff` and the manifest/snapshot loaders. Numbers
/// without a fraction or exponent come back as [`Json::UInt`] /
/// [`Json::Int`]; everything else numeric is [`Json::Num`]. Duplicate
/// object keys are kept in order (last one wins for typical readers).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates only appear for non-BMP chars the
                            // writer never emits; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_like_serde_json() {
        assert_eq!(Json::Num(2.0).render(), "2.0", "integral floats keep .0");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(u64::MAX).render(), u64::MAX.to_string());
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Null.render(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj(vec![
            ("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name", Json::str("wym")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"wym"}"#);
    }

    #[test]
    fn pretty_indents_and_terminates_with_newline() {
        let v = Json::obj(vec![("a", Json::Int(1))]);
        assert_eq!(v.pretty(), "{\n  \"a\": 1\n}\n");
        assert_eq!(Json::Arr(vec![]).pretty(), "[]\n");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj(vec![
            ("spans", Json::Arr(vec![Json::obj(vec![
                ("path", Json::str("fit/pair")),
                ("count", Json::UInt(3)),
                ("big", Json::UInt(u64::MAX)),
            ])]),),
            ("neg", Json::Int(-7)),
            ("f", Json::Num(2.5)),
            ("whole", Json::Num(2.0)),
            ("s", Json::str("a\"b\\c\nd\t\u{1}")),
            ("t", Json::Bool(true)),
            ("n", Json::Null),
            ("empty", Json::Arr(vec![])),
        ]);
        for text in [v.render(), v.pretty()] {
            let back = parse(&text).unwrap();
            // `2.0` comes back as a float, everything else exact.
            let Json::Obj(pairs) = &back else { panic!("not an object") };
            assert_eq!(pairs.len(), 8);
            assert_eq!(back.render(), v.render());
        }
    }

    #[test]
    fn parse_distinguishes_integer_kinds() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(parse("2.5e3").unwrap(), Json::Num(2500.0));
        assert_eq!(parse("0").unwrap(), Json::UInt(0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "truish", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        assert_eq!(parse(r#""a\u0041\n""#).unwrap(), Json::str("aA\n"));
        assert_eq!(parse("\"héllo→\"").unwrap(), Json::str("héllo→"));
    }
}
