//! Flamegraph export: span trees as folded stacks.
//!
//! The folded-stack format — one `frame;frame;frame weight` line per
//! stack — is what `inferno-flamegraph`, Brendan Gregg's original
//! `flamegraph.pl`, and speedscope's "folded" importer all consume. Span
//! paths map directly: `fit/discover/pair` becomes `fit;discover;pair`.
//!
//! Weights are **self** costs, because that is what the format expects —
//! renderers reconstruct a parent's total by summing its subtree:
//!
//! * [`FlameWeight::WallNs`] — a span's total nanoseconds minus the total
//!   nanoseconds of its direct children (clamped at zero: children that
//!   overlap their parent's clock by measurement overhead cannot drive a
//!   frame negative).
//! * [`FlameWeight::AllocBytes`] — bytes the span's own extent allocated.
//!   Per-span memory is already self-attributed (a child span's
//!   allocations charge the child's cell, never the parent's), so the
//!   recorded number is used as-is. The `(unattributed)` root appears as
//!   its own single-frame stack when the snapshot carries a memory
//!   section.

use crate::prof::UNATTRIBUTED_NAME;
use crate::recorder::Snapshot;
use std::io;
use std::path::Path;

/// What a folded-stack line's weight measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlameWeight {
    /// Self wall-clock nanoseconds.
    WallNs,
    /// Self allocated bytes (requires memory profiling).
    AllocBytes,
}

impl FlameWeight {
    /// Conventional file-name infix (`FLAME_run_wall.folded`).
    pub fn infix(&self) -> &'static str {
        match self {
            FlameWeight::WallNs => "wall",
            FlameWeight::AllocBytes => "alloc",
        }
    }
}

/// Renders `snap`'s span tree as folded stacks weighted by `weight`.
/// Zero-weight stacks are omitted (renderers treat them as absent anyway);
/// the output is sorted by stack name, matching the snapshot's span order.
pub fn folded(snap: &Snapshot, weight: FlameWeight) -> String {
    let mut out = String::new();
    for span in &snap.spans {
        let w = match weight {
            FlameWeight::WallNs => self_ns(snap, &span.path, span.total_ns),
            FlameWeight::AllocBytes => span.mem.as_ref().map_or(0, |m| m.alloc_bytes),
        };
        if w == 0 {
            continue;
        }
        out.push_str(&span.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    if weight == FlameWeight::AllocBytes {
        if let Some(mem) = &snap.memory {
            if mem.unattributed.alloc_bytes > 0 {
                out.push_str(&format!(
                    "{UNATTRIBUTED_NAME} {}\n",
                    mem.unattributed.alloc_bytes
                ));
            }
        }
    }
    out
}

/// A span's self time: its total minus its direct children's totals,
/// clamped at zero.
fn self_ns(snap: &Snapshot, path: &str, total_ns: u64) -> u64 {
    let child_total: u64 = snap
        .spans
        .iter()
        .filter(|s| is_direct_child(path, &s.path))
        .map(|s| s.total_ns)
        .sum();
    total_ns.saturating_sub(child_total)
}

fn is_direct_child(parent: &str, candidate: &str) -> bool {
    candidate
        .strip_prefix(parent)
        .and_then(|rest| rest.strip_prefix('/'))
        .is_some_and(|name| !name.contains('/'))
}

/// Writes `folded(snap, weight)` to `path`, creating parent directories.
/// Returns the number of stack lines written.
pub fn write_folded(
    path: impl AsRef<Path>,
    snap: &Snapshot,
    weight: FlameWeight,
) -> io::Result<usize> {
    let text = folded(snap, weight);
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, &text)?;
    Ok(text.lines().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prof::MemStat;
    use crate::recorder::{MemorySection, Recorder};

    fn snap_with(spans: &[(&str, u64)]) -> Snapshot {
        let r = Recorder::new_enabled();
        for &(path, ns) in spans {
            r.record_span(path, ns);
        }
        r.snapshot()
    }

    #[test]
    fn wall_weights_are_self_time() {
        let snap = snap_with(&[("fit", 100), ("fit/pair", 30), ("fit/pair/sm", 10), ("fit/score", 20)]);
        let text = folded(&snap, FlameWeight::WallNs);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["fit 50", "fit;pair 20", "fit;pair;sm 10", "fit;score 20"],
            "{text}"
        );
    }

    #[test]
    fn folded_totals_match_the_span_tree_root() {
        // Sum of self weights over a root's subtree == the root's total.
        let snap = snap_with(&[("fit", 1000), ("fit/a", 400), ("fit/a/b", 150), ("fit/c", 50)]);
        let total: u64 = folded(&snap, FlameWeight::WallNs)
            .lines()
            .filter(|l| l.starts_with("fit"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, snap.spans.iter().find(|s| s.path == "fit").unwrap().total_ns);
    }

    #[test]
    fn overhead_clamps_to_zero_not_underflow() {
        // Children measured longer than the parent (clock overhead): the
        // parent's self time clamps to 0 and its line is omitted.
        let snap = snap_with(&[("fit", 10), ("fit/pair", 15)]);
        let text = folded(&snap, FlameWeight::WallNs);
        assert_eq!(text, "fit;pair 15\n");
    }

    #[test]
    fn sibling_prefixes_are_not_children() {
        // `fit/pairing` must not count as a child of `fit/pair`.
        let snap = snap_with(&[("fit/pair", 10), ("fit/pairing", 90)]);
        let text = folded(&snap, FlameWeight::WallNs);
        assert!(text.contains("fit;pair 10"), "{text}");
        assert!(text.contains("fit;pairing 90"), "{text}");
    }

    #[test]
    fn alloc_weights_use_recorded_mem_and_unattributed_root() {
        let r = Recorder::new_enabled();
        r.record_span_mem(
            "fit",
            100,
            Some(MemStat { allocs: 2, alloc_bytes: 640, ..Default::default() }),
        );
        r.record_span("fit/pair", 50); // no mem recorded -> omitted
        let mut snap = r.snapshot();
        snap.memory = Some(MemorySection {
            unattributed: MemStat { allocs: 1, alloc_bytes: 77, ..Default::default() },
            live_bytes: 0,
            peak_live_bytes: 0,
        });
        let text = folded(&snap, FlameWeight::AllocBytes);
        assert_eq!(text, "fit 640\n(unattributed) 77\n");
    }

    #[test]
    fn write_folded_creates_dirs_and_reports_lines() {
        let snap = snap_with(&[("a", 5), ("b", 7)]);
        let dir = std::env::temp_dir().join("wym_obs_flame_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("FLAME_t_wall.folded");
        let n = write_folded(&path, &snap, FlameWeight::WallNs).unwrap();
        assert_eq!(n, 2);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a 5\nb 7\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
