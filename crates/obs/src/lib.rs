//! `wym-obs` — observability substrate for the WYM pipeline.
//!
//! The paper's claim is interpretability of *decisions*; this crate is the
//! operational counterpart — interpretability of the *system*. It provides
//! three primitives, all dependency-free:
//!
//! 1. **Spans** ([`span`]) — hierarchical wall-clock regions with
//!    nanosecond timing. A span's path is its name prefixed by the names of
//!    the spans open on the current thread (`fit/discover/pair`). Paths
//!    cross thread boundaries through [`capture`] / [`in_context`], which
//!    `wym-par` workers use so their spans aggregate under the logical
//!    parent instead of becoming orphan roots.
//! 2. **Metrics** — monotonically increasing counters ([`counter_add`]),
//!    last-value gauges ([`gauge_set`]), and fixed-bucket histograms
//!    ([`hist_observe`] / [`hist_observe_with`], see [`Histogram`] for the
//!    bucket-boundary contract).
//! 3. **Sinks** ([`sink`]) — a human-readable stderr summary, a
//!    machine-readable JSON file export, and a no-op sink. Recording itself
//!    is off by default: every instrumentation point first checks
//!    [`enabled`], so an un-traced run pays one thread-local read plus one
//!    relaxed atomic load per call site and allocates nothing.
//!
//! Recording goes to the *active* [`Recorder`]: a thread-local override
//! installed by [`with_recorder`] (used by tests to isolate themselves from
//! concurrently running instrumented code), falling back to a process-wide
//! global. Aggregation is deterministic in totals — span counts, counter
//! values, and histogram bucket counts are identical for any thread count —
//! while nanosecond totals naturally vary run to run.

pub mod audit;
pub mod chrome;
pub mod diff;
pub mod export;
pub mod flame;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod prof;
pub mod recorder;
pub mod ring;
pub mod sink;
pub mod sketch;
pub mod window;

pub use audit::{AuditLog, AuditOptions, DecisionCost, DecisionRecord};
pub use export::prometheus_text;
pub use hist::Histogram;
pub use json::Json;
pub use manifest::Manifest;
pub use prof::{MemStat, TrackingAlloc};
pub use recorder::{MemorySection, Recorder, Snapshot, SpanStat};
pub use ring::{Flight, FlightDump};
pub use sink::{JsonFileSink, NoopSink, Sink, StderrSink};
pub use sketch::{DriftReport, ModelSketch, DRIFT_TRIP_PSI};
pub use window::{WindowFrame, Windowed};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

/// The process-wide default recorder (disabled until [`set_enabled`]).
pub fn global() -> &'static Arc<Recorder> {
    static GLOBAL: OnceLock<Arc<Recorder>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Recorder::new()))
}

thread_local! {
    /// Per-thread recorder override (tests, propagated worker contexts).
    static LOCAL: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
    /// Names of the spans currently open on this thread, root first.
    static PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The recorder instrumentation points write to on this thread, if it is
/// enabled; `None` otherwise. This is the common fast-path gate: one
/// thread-local read plus one relaxed atomic load.
fn active() -> Option<Arc<Recorder>> {
    LOCAL.with(|l| {
        let local = l.borrow();
        let rec = local.as_ref().unwrap_or_else(|| global());
        if rec.is_enabled() {
            Some(Arc::clone(rec))
        } else {
            None
        }
    })
}

/// Whether the active recorder is currently recording.
pub fn enabled() -> bool {
    LOCAL.with(|l| {
        l.borrow().as_ref().unwrap_or_else(|| global()).is_enabled()
    })
}

/// Turns the active recorder on or off.
pub fn set_enabled(on: bool) {
    LOCAL.with(|l| {
        l.borrow().as_ref().unwrap_or_else(|| global()).set_enabled(on);
    });
}

/// Runs `f` with `rec` as this thread's recorder (restored afterwards, even
/// on panic). Lets tests record into a private recorder while unrelated
/// instrumented code on other threads keeps hitting the (disabled) global.
pub fn with_recorder<R>(rec: Arc<Recorder>, f: impl FnOnce() -> R) -> R {
    let _restore = install(Some(rec));
    f()
}

/// A snapshot of this thread's observability context: active recorder
/// override, open span path, and (when memory profiling is on) the span's
/// memory charge target. Hand it to worker threads via [`in_context`] so
/// their spans, metrics, and allocations land under the logical parent.
#[derive(Clone)]
pub struct ObsContext {
    rec: Option<Arc<Recorder>>,
    path: Vec<String>,
    mem: Option<Arc<prof::MemCell>>,
    audit: Option<Arc<AuditLog>>,
    flight: Option<Arc<Flight>>,
}

/// Captures the current thread's recorder override, span path, memory
/// charge target, audit-log override, and flight-recorder override.
pub fn capture() -> ObsContext {
    ObsContext {
        rec: LOCAL.with(|l| l.borrow().clone()),
        path: PATH.with(|p| p.borrow().clone()),
        mem: prof::current_arc(),
        audit: audit::capture_local(),
        flight: ring::capture_local(),
    }
}

/// Runs `f` under a captured context (recorder override + span path +
/// memory charge target + audit-log and flight overrides), restoring the
/// thread's previous context afterwards, even on panic.
pub fn in_context<R>(ctx: &ObsContext, f: impl FnOnce() -> R) -> R {
    let _restore_rec = install(ctx.rec.clone());
    let prev_path = PATH.with(|p| std::mem::replace(&mut *p.borrow_mut(), ctx.path.clone()));
    let _restore_path = PathRestore(prev_path);
    let _restore_mem = prof::CellScope::install(ctx.mem.clone());
    let _restore_audit = audit::install_local(ctx.audit.clone());
    let _restore_flight = ring::install_local(ctx.flight.clone());
    f()
}

/// RAII restore of the thread-local recorder override.
fn install(rec: Option<Arc<Recorder>>) -> RecorderRestore {
    RecorderRestore(LOCAL.with(|l| std::mem::replace(&mut *l.borrow_mut(), rec)))
}

struct RecorderRestore(Option<Arc<Recorder>>);

impl Drop for RecorderRestore {
    fn drop(&mut self) {
        let prev = self.0.take();
        LOCAL.with(|l| *l.borrow_mut() = prev);
    }
}

struct PathRestore(Vec<String>);

impl Drop for PathRestore {
    fn drop(&mut self) {
        let prev = std::mem::take(&mut self.0);
        PATH.with(|p| *p.borrow_mut() = prev);
    }
}

/// An open span; records its wall-clock duration (and, when memory
/// profiling is on, its allocator activity) under its path on drop.
/// Inert (no clock read, no allocation) when recording is disabled at open.
///
/// The guard manipulates thread-local state on open and drop, so it is
/// deliberately `!Send`: close it on the thread that opened it.
#[must_use = "a span records on drop; binding it to _ closes it immediately"]
pub struct SpanGuard {
    rec: Option<Arc<Recorder>>,
    start: Option<Instant>,
    path: String,
    /// Memory charge target installed for this span's extent; present only
    /// while profiling is enabled. The scope restores the parent's cell
    /// before the cell's totals are read, so the recorder's own bookkeeping
    /// allocations charge the parent, not the closing span.
    mem: Option<(Arc<prof::MemCell>, prof::CellScope)>,
    /// The flight-recorder lane this span's enter event landed in, if a
    /// flight is enabled; drop records the matching exit event. Independent
    /// of `rec`: the black box keeps recording when tracing is off.
    flight: Option<Arc<ring::ThreadRing>>,
    _thread_bound: std::marker::PhantomData<*const ()>,
}

/// Opens a span named `name`, nested under the spans currently open on this
/// thread. Spans must be closed (dropped) in LIFO order — the natural order
/// of scope-bound guards.
pub fn span(name: &str) -> SpanGuard {
    let flight = ring::span_enter(name);
    let Some(rec) = active() else {
        return SpanGuard {
            rec: None,
            start: None,
            path: String::new(),
            mem: None,
            flight,
            _thread_bound: std::marker::PhantomData,
        };
    };
    let path = PATH.with(|p| {
        let mut p = p.borrow_mut();
        p.push(name.to_string());
        p.join("/")
    });
    let mem = prof::enabled().then(|| {
        let cell = Arc::new(prof::MemCell::new());
        let scope = prof::CellScope::install(Some(Arc::clone(&cell)));
        (cell, scope)
    });
    SpanGuard {
        rec: Some(rec),
        start: Some(Instant::now()),
        path,
        mem,
        flight,
        _thread_bound: std::marker::PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(ring) = self.flight.take() {
            ring.exit_span();
        }
        if let Some(rec) = self.rec.take() {
            let ns = self.start.map_or(0, |s| s.elapsed().as_nanos() as u64);
            let mem = self.mem.take().map(|(cell, scope)| {
                drop(scope); // restore the parent's charge target first
                cell.stat()
            });
            rec.record_span_mem(&self.path, ns, mem);
            PATH.with(|p| {
                p.borrow_mut().pop();
            });
        }
    }
}

/// Adds `n` to the counter `name`. No-op when recording is disabled
/// (though an enabled flight recorder still logs the delta as an event).
pub fn counter_add(name: &str, n: u64) {
    ring::counter_event(name, n);
    if let Some(rec) = active() {
        rec.counter_add(name, n);
    }
}

/// Sets the gauge `name` to `v` (last write wins). No-op when disabled.
pub fn gauge_set(name: &str, v: f64) {
    if let Some(rec) = active() {
        rec.gauge_set(name, v);
    }
}

/// Records `v` into histogram `name` with the default bucket boundaries
/// (see [`hist::default_bounds`]). No-op when disabled.
pub fn hist_observe(name: &str, v: f64) {
    if let Some(rec) = active() {
        rec.hist_observe(name, None, v);
    }
}

/// Records `v` into histogram `name`, creating it with `bounds` on first
/// use (later calls ignore `bounds`). No-op when disabled.
pub fn hist_observe_with(name: &str, bounds: &[f64], v: f64) {
    if let Some(rec) = active() {
        rec.hist_observe(name, Some(bounds), v);
    }
}

/// Registers `name` as a pipeline stage. Registered stages always appear in
/// snapshots with their span count (0 when never entered), so a smoke check
/// can catch silently-skipped stages. Registration works even while
/// recording is disabled.
pub fn register_stage(name: &str) {
    LOCAL.with(|l| {
        l.borrow().as_ref().unwrap_or_else(|| global()).register_stage(name);
    });
}

/// Registers several pipeline stages at once.
pub fn register_stages(names: &[&str]) {
    for name in names {
        register_stage(name);
    }
}

/// Snapshot of the active recorder's aggregated spans and metrics. When
/// memory profiling is on, the snapshot additionally carries the process
/// [`MemorySection`]: the `(unattributed)` root and the live/peak track.
pub fn snapshot() -> Snapshot {
    let mut snap = LOCAL.with(|l| l.borrow().as_ref().unwrap_or_else(|| global()).snapshot());
    if prof::enabled() {
        snap.memory = Some(MemorySection {
            unattributed: prof::unattributed(),
            live_bytes: prof::live_bytes(),
            peak_live_bytes: prof::peak_live_bytes(),
        });
    }
    snap
}

/// Clears the active recorder's spans and metrics (registered stages and
/// the enabled flag survive).
pub fn reset() {
    LOCAL.with(|l| {
        l.borrow().as_ref().unwrap_or_else(|| global()).reset();
    });
}

/// Turns on windowed metrics on the active recorder: a ring of `capacity`
/// frames that every counter increment and histogram observation also
/// lands in (see [`Windowed`]). Works while recording is disabled, like
/// stage registration — the ring starts filling once recording is on.
pub fn window_enable(capacity: usize) {
    LOCAL.with(|l| {
        l.borrow().as_ref().unwrap_or_else(|| global()).enable_windows(capacity);
    });
}

/// Seals the active recorder's current window frame and opens the next.
/// Callers rotate on logical progress (every K records, every batch) —
/// never wall time — so frame contents stay deterministic.
pub fn window_advance() {
    LOCAL.with(|l| {
        l.borrow().as_ref().unwrap_or_else(|| global()).advance_window();
    });
}

// ── Flight recorder installation (panic hook + stall watchdog) ──────────

/// Configuration for [`flight_install`]. [`FlightOptions::default`] reads
/// the environment: `WYM_FLIGHT_CAPACITY` (events per lane),
/// `WYM_STALL_MS` (watchdog threshold; `0` disables the watchdog), and
/// names dumps after the binary (`argv[0]` stem).
#[derive(Debug, Clone)]
pub struct FlightOptions {
    /// Per-lane ring capacity in events.
    pub capacity: usize,
    /// Watchdog stall threshold in milliseconds; `0` disables the
    /// watchdog thread entirely.
    pub stall_ms: u64,
    /// Directory dump files are written into.
    pub dump_dir: String,
    /// Dump file stem: `FLIGHT_<stem>_<tag>.{txt,trace.json}`.
    pub stem: String,
}

impl Default for FlightOptions {
    fn default() -> FlightOptions {
        let capacity = std::env::var("WYM_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c: &usize| c > 0)
            .unwrap_or(ring::DEFAULT_CAPACITY);
        let stall_ms = std::env::var("WYM_STALL_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30_000);
        let stem = std::env::args()
            .next()
            .as_deref()
            .and_then(|a| {
                std::path::Path::new(a).file_stem().map(|s| s.to_string_lossy().into_owned())
            })
            .unwrap_or_else(|| "run".to_string());
        FlightOptions { capacity, stall_ms, dump_dir: "results".to_string(), stem }
    }
}

/// One-shot process-wide flight install guard.
static FLIGHT_INIT: Once = Once::new();
/// Dump-once latches: the first panic (a re-raised worker panic fires the
/// hook twice) and the first stall each produce exactly one dump pair.
static PANIC_DUMPED: AtomicBool = AtomicBool::new(false);
static STALL_DUMPED: AtomicBool = AtomicBool::new(false);
/// Where the hook and watchdog write dumps: `(dir, stem)`.
static DUMP_TARGET: Mutex<Option<(String, String)>> = Mutex::new(None);

/// Installs the process-wide flight recorder: an always-on event ring per
/// thread (see [`ring`]), a chained panic hook that dumps the recent-event
/// tail before the default backtrace, and (unless `opts.stall_ms` is 0) a
/// watchdog thread that warns — and dumps once — when a thread's innermost
/// open span exceeds the stall threshold.
///
/// Binaries call this once at startup; later calls are no-ops. Setting
/// `WYM_FLIGHT=off` (or `0`) skips installation entirely, restoring the
/// one-relaxed-load disabled fast path everywhere.
pub fn flight_install(opts: FlightOptions) {
    if std::env::var("WYM_FLIGHT").is_ok_and(|v| v == "off" || v == "0") {
        return;
    }
    FLIGHT_INIT.call_once(|| {
        *DUMP_TARGET.lock().unwrap_or_else(|e| e.into_inner()) =
            Some((opts.dump_dir.clone(), opts.stem.clone()));
        let flight = Arc::new(ring::Flight::new_enabled(opts.capacity));
        ring::install_global(Arc::clone(&flight));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !PANIC_DUMPED.swap(true, Ordering::SeqCst) {
                let msg = info
                    .payload()
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| info.payload().downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let loc = info
                    .location()
                    .map(|l| format!(" at {}:{}", l.file(), l.line()))
                    .unwrap_or_default();
                if let Some((txt, json)) =
                    write_flight_dump("panic", &format!("panic: {msg}{loc}"))
                {
                    eprintln!("flight: panic dump written to {txt} and {json}");
                }
            }
            prev(info);
        }));
        if opts.stall_ms > 0 {
            let stall_ms = opts.stall_ms;
            let _ = std::thread::Builder::new()
                .name("wym-flight-watchdog".to_string())
                .spawn(move || watchdog_loop(&flight, stall_ms));
        }
    });
}

/// Scans for stalled innermost spans every quarter threshold (clamped to
/// 25–250 ms), warning once per stalled span instance and dumping on the
/// first stall seen. Long-lived *outer* spans (a whole `fit`) never trip
/// this — only a leaf making no progress does.
fn watchdog_loop(flight: &ring::Flight, stall_ms: u64) {
    let poll = Duration::from_millis((stall_ms / 4).clamp(25, 250));
    let mut warned: Vec<(u64, u64)> = Vec::new();
    loop {
        std::thread::sleep(poll);
        for s in flight.stalled_spans(stall_ms) {
            if warned.contains(&(s.tid, s.enter_ts_ns)) {
                continue;
            }
            warned.push((s.tid, s.enter_ts_ns));
            eprintln!(
                "flight: stall watchdog: span \"{}\" open {} ms on lane {} [{}] \
                 (threshold {} ms)",
                s.name, s.open_ms, s.tid, s.label, stall_ms
            );
            if !STALL_DUMPED.swap(true, Ordering::SeqCst) {
                let reason = format!(
                    "stall: span \"{}\" open {} ms (threshold {} ms)",
                    s.name, s.open_ms, stall_ms
                );
                if let Some((txt, json)) = write_flight_dump("stall", &reason) {
                    eprintln!("flight: stall dump written to {txt} and {json}");
                }
            }
        }
    }
}

/// Dumps the installed global flight to the configured target. `None`
/// when no flight or target is installed; write errors are reported to
/// stderr rather than propagated (the panic hook cannot recover anyway).
fn write_flight_dump(tag: &str, reason: &str) -> Option<(String, String)> {
    let flight = ring::global_flight()?;
    let (dir, stem) = DUMP_TARGET.lock().unwrap_or_else(|e| e.into_inner()).clone()?;
    let dump = flight.dump(reason);
    match chrome::write_dump_files(&dir, &stem, tag, &dump) {
        Ok(paths) => Some(paths),
        Err(e) => {
            eprintln!("flight: failed to write {tag} dump: {e}");
            None
        }
    }
}

/// Exports the installed global flight's current contents as a Chrome
/// trace-event JSON file at `path` (the `--chrome-trace` flag). Returns
/// the number of trace events written.
pub fn flight_write_chrome(path: &str) -> Result<usize, String> {
    let flight = ring::global_flight()
        .ok_or_else(|| "no flight recorder installed in this process".to_string())?;
    let dump = flight.dump("full-run export");
    chrome::write_chrome_file(std::path::Path::new(path), &dump)
        .map_err(|e| format!("cannot write {path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local() -> Arc<Recorder> {
        Arc::new(Recorder::new_enabled())
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let rec = local();
        with_recorder(Arc::clone(&rec), || {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        });
        let snap = rec.snapshot();
        let paths: Vec<(&str, u64)> =
            snap.spans.iter().map(|s| (s.path.as_str(), s.count)).collect();
        assert_eq!(paths, vec![("outer", 1), ("outer/inner", 3)]);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Arc::new(Recorder::new()); // disabled
        with_recorder(Arc::clone(&rec), || {
            let _s = span("ghost");
            counter_add("ghost.counter", 5);
            gauge_set("ghost.gauge", 1.0);
            hist_observe("ghost.hist", 0.5);
        });
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let rec = local();
        with_recorder(Arc::clone(&rec), || {
            counter_add("c", 2);
            counter_add("c", 3);
            gauge_set("g", 1.0);
            gauge_set("g", -2.5);
        });
        let snap = rec.snapshot();
        assert_eq!(snap.counter("c"), Some(5));
        assert_eq!(snap.gauge("g"), Some(-2.5));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn context_carries_path_and_recorder_across_threads() {
        let rec = local();
        let ctx = with_recorder(Arc::clone(&rec), || {
            let _root = span("root");
            let ctx = capture();
            // Worker thread: no local recorder of its own, inherits via ctx.
            std::thread::scope(|s| {
                s.spawn(|| {
                    in_context(&ctx, || {
                        let _w = span("work");
                    });
                })
                .join()
                .unwrap();
            });
            ctx
        });
        assert_eq!(ctx.path, vec!["root".to_string()]);
        let snap = rec.snapshot();
        assert_eq!(snap.span_count("root/work"), 1);
    }

    #[test]
    fn with_recorder_restores_previous_recorder() {
        let a = local();
        let b = local();
        with_recorder(Arc::clone(&a), || {
            with_recorder(Arc::clone(&b), || counter_add("x", 1));
            counter_add("x", 10);
        });
        assert_eq!(a.snapshot().counter("x"), Some(10));
        assert_eq!(b.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn reset_clears_data_but_keeps_stage_registry() {
        let rec = local();
        with_recorder(Arc::clone(&rec), || {
            register_stage("tokenize");
            let _s = span("tokenize");
            counter_add("c", 1);
        });
        rec.reset();
        let snap = rec.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert_eq!(snap.stages, vec![("tokenize".to_string(), 0)]);
        assert!(rec.is_enabled(), "reset must not disable the recorder");
    }

    #[test]
    fn stage_counts_match_any_path_segment() {
        let rec = local();
        with_recorder(Arc::clone(&rec), || {
            register_stages(&["pair", "score"]);
            let _fit = span("fit");
            {
                let _p = span("pair");
            }
            {
                let _p = span("pair");
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.stages, vec![("pair".to_string(), 2), ("score".to_string(), 0)]);
    }
}
