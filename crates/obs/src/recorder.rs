//! The recorder: thread-safe aggregation of spans and metrics.
//!
//! All state lives behind one mutex, keyed by `BTreeMap` so snapshots come
//! out in a deterministic order. Instrumentation points only take the lock
//! when recording is enabled — the disabled fast path is a single relaxed
//! atomic load (see the crate docs). Lock traffic while enabled is one
//! uncontended acquisition per *record-level* event (a span close, a
//! counter add), not per token or per matrix element: hot loops aggregate
//! locally and report once.

use crate::hist::{default_bounds, Histogram};
use crate::json::Json;
use crate::prof::MemStat;
use crate::window::Windowed;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full `/`-separated path (`fit/discover/pair`).
    pub path: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Shortest single entry, in nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
    /// Allocator activity charged to this span's own extent (children
    /// excluded — they charge their own cells). Present only when memory
    /// profiling was on; counts/bytes sum across entries, the peak takes
    /// the max.
    pub mem: Option<MemStat>,
}

impl SpanStat {
    /// Mean nanoseconds per entry (0 when never entered).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Depth in the span tree (number of `/` separators).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Last path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

#[derive(Default)]
struct State {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    stages: BTreeSet<String>,
    /// Windowed-metrics ring; `None` until [`Recorder::enable_windows`].
    /// Lives under the same lock as the lifetime aggregates so a counter
    /// increment and its window copy are atomic together.
    windows: Option<Windowed>,
}

/// A thread-safe span/metric aggregator. Most code uses the process-global
/// recorder through the crate-level free functions; tests and embedders can
/// hold their own.
pub struct Recorder {
    enabled: AtomicBool,
    state: Mutex<State>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A disabled recorder.
    pub fn new() -> Recorder {
        Recorder { enabled: AtomicBool::new(false), state: Mutex::new(State::default()) }
    }

    /// A recorder that starts enabled (test convenience).
    pub fn new_enabled() -> Recorder {
        let r = Recorder::new();
        r.set_enabled(true);
        r
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned lock only means a panic while holding it; the counters
        // themselves are still coherent, so keep going.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Folds one closed span into the aggregate for `path`.
    pub fn record_span(&self, path: &str, ns: u64) {
        self.record_span_mem(path, ns, None);
    }

    /// Folds one closed span with its memory charge into the aggregate for
    /// `path`. `mem` is `None` when profiling was off for this entry.
    pub fn record_span_mem(&self, path: &str, ns: u64, mem: Option<MemStat>) {
        let mut st = self.lock();
        let stat = st.spans.entry(path.to_string()).or_insert_with(|| SpanStat {
            path: path.to_string(),
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            mem: None,
        });
        stat.count += 1;
        stat.total_ns += ns;
        stat.min_ns = stat.min_ns.min(ns);
        stat.max_ns = stat.max_ns.max(ns);
        if let Some(m) = mem {
            stat.mem.get_or_insert_with(MemStat::default).merge(&m);
        }
    }

    /// Adds `n` to counter `name` (and to the current window frame when
    /// windowed metrics are enabled).
    pub fn counter_add(&self, name: &str, n: u64) {
        let mut st = self.lock();
        *st.counters.entry(name.to_string()).or_insert(0) += n;
        if let Some(w) = st.windows.as_mut() {
            w.counter_add(name, n);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`; `bounds` applies only when the
    /// histogram is created by this call (`None` = default bounds).
    pub fn hist_observe(&self, name: &str, bounds: Option<&[f64]>, v: f64) {
        let mut st = self.lock();
        let windows_on = st.windows.is_some();
        let h = st.hists.entry(name.to_string()).or_insert_with(|| match bounds {
            Some(b) => Histogram::new(b),
            None => Histogram::new(&default_bounds()),
        });
        h.observe(v);
        // Reuse the lifetime histogram's boundaries in the window copy so
        // the same name never ends up bucketed two ways (which would make
        // window merges panic).
        let lifetime_bounds = windows_on.then(|| h.bounds().to_vec());
        if let (Some(w), Some(b)) = (st.windows.as_mut(), lifetime_bounds) {
            w.hist_observe(name, Some(&b), v);
        }
    }

    /// Turns on windowed metrics with a ring of `capacity` frames,
    /// replacing any existing ring. Works while recording is disabled, like
    /// stage registration.
    pub fn enable_windows(&self, capacity: usize) {
        self.lock().windows = Some(Windowed::new(capacity));
    }

    /// Seals the current window frame and opens the next (no-op until
    /// [`Recorder::enable_windows`]).
    pub fn advance_window(&self) {
        if let Some(w) = self.lock().windows.as_mut() {
            w.advance();
        }
    }

    /// Registers a pipeline stage (see [`crate::register_stage`]).
    pub fn register_stage(&self, name: &str) {
        self.lock().stages.insert(name.to_string());
    }

    /// A deterministic snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let st = self.lock();
        let spans: Vec<SpanStat> = st.spans.values().cloned().collect();
        let stages = st
            .stages
            .iter()
            .map(|stage| {
                let count = spans
                    .iter()
                    .filter(|s| s.path.split('/').any(|seg| seg == stage))
                    .map(|s| s.count)
                    .sum();
                (stage.clone(), count)
            })
            .collect();
        Snapshot {
            spans,
            counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: st.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            stages,
            memory: None,
            windows: st.windows.clone(),
        }
    }

    /// Drops all recorded spans and metrics; keeps the stage registry and
    /// the enabled flag. An enabled window ring restarts empty at the same
    /// capacity.
    pub fn reset(&self) {
        let mut st = self.lock();
        st.spans.clear();
        st.counters.clear();
        st.gauges.clear();
        st.hists.clear();
        if let Some(w) = st.windows.as_mut() {
            *w = Windowed::new(w.capacity());
        }
    }
}

/// Process-level memory numbers attached to a snapshot when profiling is
/// on: everything the per-span cells could not attribute, plus the global
/// live-byte track.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemorySection {
    /// Allocator activity outside any span (the `(unattributed)` root).
    pub unattributed: MemStat,
    /// Live heap bytes (allocated minus freed) since profiling was enabled.
    pub live_bytes: i64,
    /// High-water mark of `live_bytes`.
    pub peak_live_bytes: i64,
}

/// A point-in-time copy of a recorder's aggregates, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Registered pipeline stages with their span counts — a stage's count
    /// is the summed count of every span whose path contains the stage name
    /// as a segment; 0 flags a stage that never ran.
    pub stages: Vec<(String, u64)>,
    /// Process-level memory numbers; `None` when profiling was off.
    pub memory: Option<MemorySection>,
    /// Windowed-metrics ring; `None` unless windows were enabled.
    pub windows: Option<Windowed>,
}

impl Snapshot {
    /// Value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Entry count of the span at exactly `path` (0 when absent).
    pub fn span_count(&self, path: &str) -> u64 {
        self.spans.iter().find(|s| s.path == path).map_or(0, |s| s.count)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// The snapshot as a JSON tree — the schema of `results/OBS_*.json`:
    /// `spans` (array), `counters` / `gauges` (objects), `histograms`
    /// (objects with `bounds` / `counts` / stats), `stages` (object,
    /// zero-valued for registered-but-never-run stages), and — when memory
    /// profiling was on — per-span `mem` objects plus a top-level `memory`
    /// section. Version-2 files written by [`crate::JsonFileSink`] prefix
    /// all of this with a `manifest` header (see [`crate::Manifest`]);
    /// version-1 files have neither manifest nor memory keys, and
    /// [`Snapshot::from_json`] accepts both.
    pub fn to_json(&self) -> Json {
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    let mut fields = vec![
                        ("path", Json::str(&s.path)),
                        ("count", Json::UInt(s.count)),
                        ("total_ns", Json::UInt(s.total_ns)),
                        ("mean_ns", Json::UInt(s.mean_ns())),
                        ("min_ns", Json::UInt(s.min_ns)),
                        ("max_ns", Json::UInt(s.max_ns)),
                    ];
                    if let Some(m) = &s.mem {
                        fields.push(("mem", mem_to_json(m)));
                    }
                    Json::obj(fields)
                })
                .collect(),
        );
        let counters =
            Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect());
        let gauges =
            Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect());
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("bounds", Json::Arr(h.bounds().iter().map(|&b| Json::Num(b)).collect())),
                            ("counts", Json::Arr(h.counts().iter().map(|&c| Json::UInt(c)).collect())),
                            ("count", Json::UInt(h.count())),
                            ("sum", Json::Num(h.sum())),
                            ("mean", Json::Num(h.mean())),
                            ("min", if h.count() == 0 { Json::Null } else { Json::Num(h.min()) }),
                            ("max", if h.count() == 0 { Json::Null } else { Json::Num(h.max()) }),
                        ]),
                    )
                })
                .collect(),
        );
        let stages =
            Json::Obj(self.stages.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect());
        let mut sections = vec![
            ("spans", spans),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("stages", stages),
        ];
        if let Some(mem) = &self.memory {
            sections.push((
                "memory",
                Json::obj(vec![
                    ("unattributed", mem_to_json(&mem.unattributed)),
                    ("live_bytes", Json::Int(mem.live_bytes)),
                    ("peak_live_bytes", Json::Int(mem.peak_live_bytes)),
                ]),
            ));
        }
        if let Some(w) = &self.windows {
            // Additive optional section, like `memory`: readers that
            // predate windows ignore it, so the file schema version stays
            // put (the same tolerance the artifact container grants
            // unknown sections).
            sections.push(("windows", w.to_json()));
        }
        Json::obj(sections)
    }

    /// Parses a snapshot back out of its [`Snapshot::to_json`] form (the
    /// body of an `OBS_*.json` file, with or without a `manifest` header).
    /// Tolerant of version-1 files: missing `memory` keys and span `mem`
    /// objects simply come back as `None`, and unknown keys are ignored.
    pub fn from_json(v: &Json) -> Result<Snapshot, String> {
        let Json::Obj(sections) = v else {
            return Err("snapshot JSON must be an object".to_string());
        };
        let get = |name: &str| sections.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let mut snap = Snapshot::default();
        if let Some(Json::Arr(spans)) = get("spans") {
            for s in spans {
                snap.spans.push(span_from_json(s)?);
            }
        }
        if let Some(Json::Obj(counters)) = get("counters") {
            for (k, v) in counters {
                snap.counters.push((k.clone(), as_u64(v).ok_or("bad counter value")?));
            }
        }
        if let Some(Json::Obj(gauges)) = get("gauges") {
            for (k, v) in gauges {
                snap.gauges.push((k.clone(), as_f64(v).ok_or("bad gauge value")?));
            }
        }
        if let Some(Json::Obj(hists)) = get("histograms") {
            for (k, v) in hists {
                snap.histograms.push((k.clone(), hist_from_json(v)?));
            }
        }
        if let Some(Json::Obj(stages)) = get("stages") {
            for (k, v) in stages {
                snap.stages.push((k.clone(), as_u64(v).ok_or("bad stage count")?));
            }
        }
        if let Some(Json::Obj(mem)) = get("memory") {
            let field = |name: &str| mem.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            snap.memory = Some(MemorySection {
                unattributed: field("unattributed")
                    .map(mem_from_json)
                    .transpose()?
                    .unwrap_or_default(),
                live_bytes: field("live_bytes").and_then(as_i64).unwrap_or(0),
                peak_live_bytes: field("peak_live_bytes").and_then(as_i64).unwrap_or(0),
            });
        }
        if let Some(w) = get("windows") {
            snap.windows = Some(Windowed::from_json(w)?);
        }
        Ok(snap)
    }

    /// Human-readable rendering: an indented span tree followed by metric
    /// tables. This is what [`crate::sink::StderrSink`] prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("── spans ─────────────────────────────────────────────\n");
        if self.spans.is_empty() {
            out.push_str("(none)\n");
        }
        for s in &self.spans {
            let indent = "  ".repeat(s.depth());
            let label = format!("{indent}{}", s.name());
            let mem = s
                .mem
                .as_ref()
                .map(|m| {
                    format!("  [{} allocs, {} self]", m.allocs, fmt_bytes(m.alloc_bytes))
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "{label:<34} {:>8} × {:>10}  (total {}){mem}\n",
                s.count,
                fmt_ns(s.mean_ns()),
                fmt_ns(s.total_ns)
            ));
        }
        if let Some(mem) = &self.memory {
            out.push_str("── memory ────────────────────────────────────────────\n");
            out.push_str(&format!(
                "{:<34} {:>8} allocs, {} ({} freed)\n",
                crate::prof::UNATTRIBUTED_NAME,
                mem.unattributed.allocs,
                fmt_bytes(mem.unattributed.alloc_bytes),
                fmt_bytes(mem.unattributed.free_bytes),
            ));
            out.push_str(&format!(
                "live {} / peak {}\n",
                fmt_bytes(mem.live_bytes.max(0) as u64),
                fmt_bytes(mem.peak_live_bytes.max(0) as u64),
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("── stages ────────────────────────────────────────────\n");
            for (stage, count) in &self.stages {
                let marker = if *count == 0 { "  ⚠ zero spans" } else { "" };
                out.push_str(&format!("{stage:<34} {count:>8}{marker}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("── counters ──────────────────────────────────────────\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<34} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("── gauges ────────────────────────────────────────────\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<34} {v:>12.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("── histograms ────────────────────────────────────────\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{name:<34} n={} mean={:.4} min={:.4} max={:.4}\n",
                    h.count(),
                    h.mean(),
                    if h.count() == 0 { 0.0 } else { h.min() },
                    if h.count() == 0 { 0.0 } else { h.max() },
                ));
            }
        }
        out
    }
}

/// A [`MemStat`] as the JSON object stored under a span's `mem` key.
fn mem_to_json(m: &MemStat) -> Json {
    Json::obj(vec![
        ("allocs", Json::UInt(m.allocs)),
        ("frees", Json::UInt(m.frees)),
        ("alloc_bytes", Json::UInt(m.alloc_bytes)),
        ("free_bytes", Json::UInt(m.free_bytes)),
        ("peak_net_bytes", Json::Int(m.peak_net_bytes)),
    ])
}

fn mem_from_json(v: &Json) -> Result<MemStat, String> {
    let Json::Obj(fields) = v else {
        return Err("mem must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    Ok(MemStat {
        allocs: get("allocs").and_then(as_u64).unwrap_or(0),
        frees: get("frees").and_then(as_u64).unwrap_or(0),
        alloc_bytes: get("alloc_bytes").and_then(as_u64).unwrap_or(0),
        free_bytes: get("free_bytes").and_then(as_u64).unwrap_or(0),
        peak_net_bytes: get("peak_net_bytes").and_then(as_i64).unwrap_or(0),
    })
}

fn span_from_json(v: &Json) -> Result<SpanStat, String> {
    let Json::Obj(fields) = v else {
        return Err("span must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let Some(Json::Str(path)) = get("path") else {
        return Err("span is missing its path".to_string());
    };
    Ok(SpanStat {
        path: path.clone(),
        count: get("count").and_then(as_u64).ok_or("span missing count")?,
        total_ns: get("total_ns").and_then(as_u64).unwrap_or(0),
        min_ns: get("min_ns").and_then(as_u64).unwrap_or(0),
        max_ns: get("max_ns").and_then(as_u64).unwrap_or(0),
        mem: get("mem").map(mem_from_json).transpose()?,
    })
}

fn hist_from_json(v: &Json) -> Result<Histogram, String> {
    let Json::Obj(fields) = v else {
        return Err("histogram must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let Some(Json::Arr(bounds)) = get("bounds") else {
        return Err("histogram missing bounds".to_string());
    };
    let Some(Json::Arr(counts)) = get("counts") else {
        return Err("histogram missing counts".to_string());
    };
    let bounds: Vec<f64> =
        bounds.iter().map(|b| as_f64(b).ok_or("bad bound")).collect::<Result<_, _>>()?;
    let counts: Vec<u64> =
        counts.iter().map(|c| as_u64(c).ok_or("bad bucket count")).collect::<Result<_, _>>()?;
    // Exported min/max are null for empty histograms; fall back to the
    // empty sentinels so the round trip is faithful.
    Histogram::from_parts(
        &bounds,
        &counts,
        get("sum").and_then(as_f64).unwrap_or(0.0),
        get("min").and_then(as_f64).unwrap_or(f64::INFINITY),
        get("max").and_then(as_f64).unwrap_or(f64::NEG_INFINITY),
    )
}

pub(crate) fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::UInt(n) => Some(*n),
        Json::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

pub(crate) fn as_i64(v: &Json) -> Option<i64> {
    match v {
        Json::Int(n) => Some(*n),
        Json::UInt(n) if *n <= i64::MAX as u64 => Some(*n as i64),
        _ => None,
    }
}

pub(crate) fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Int(n) => Some(*n as f64),
        Json::UInt(n) => Some(*n as f64),
        _ => None,
    }
}

/// Pretty-prints nanoseconds at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Pretty-prints a byte count at a human scale.
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.2}GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.2}KiB", b as f64 / (1u64 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_aggregation_tracks_count_total_min_max() {
        let r = Recorder::new_enabled();
        r.record_span("a/b", 10);
        r.record_span("a/b", 30);
        let snap = r.snapshot();
        let s = &snap.spans[0];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 40, 10, 30));
        assert_eq!(s.mean_ns(), 20);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.name(), "b");
    }

    #[test]
    fn snapshot_orders_by_name() {
        let r = Recorder::new_enabled();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.record_span("beta", 1);
        r.record_span("alpha", 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.spans[0].path, "alpha");
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let r = Recorder::new_enabled();
        r.register_stage("pair");
        r.record_span("fit/pair", 5);
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.hist_observe("h", None, 1.0);
        let json = r.snapshot().to_json().pretty();
        for key in ["\"spans\"", "\"counters\"", "\"gauges\"", "\"histograms\"", "\"stages\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"pair\": 1"));
    }

    #[test]
    fn text_rendering_flags_zero_span_stages() {
        let r = Recorder::new_enabled();
        r.register_stage("explain");
        let text = r.snapshot().render_text();
        assert!(text.contains("zero spans"), "{text}");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
