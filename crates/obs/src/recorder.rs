//! The recorder: thread-safe aggregation of spans and metrics.
//!
//! All state lives behind one mutex, keyed by `BTreeMap` so snapshots come
//! out in a deterministic order. Instrumentation points only take the lock
//! when recording is enabled — the disabled fast path is a single relaxed
//! atomic load (see the crate docs). Lock traffic while enabled is one
//! uncontended acquisition per *record-level* event (a span close, a
//! counter add), not per token or per matrix element: hot loops aggregate
//! locally and report once.

use crate::hist::{default_bounds, Histogram};
use crate::json::Json;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Full `/`-separated path (`fit/discover/pair`).
    pub path: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Shortest single entry, in nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per entry (0 when never entered).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_ns / self.count
        }
    }

    /// Depth in the span tree (number of `/` separators).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Last path segment (the span's own name).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

#[derive(Default)]
struct State {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    stages: BTreeSet<String>,
}

/// A thread-safe span/metric aggregator. Most code uses the process-global
/// recorder through the crate-level free functions; tests and embedders can
/// hold their own.
pub struct Recorder {
    enabled: AtomicBool,
    state: Mutex<State>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A disabled recorder.
    pub fn new() -> Recorder {
        Recorder { enabled: AtomicBool::new(false), state: Mutex::new(State::default()) }
    }

    /// A recorder that starts enabled (test convenience).
    pub fn new_enabled() -> Recorder {
        let r = Recorder::new();
        r.set_enabled(true);
        r
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned lock only means a panic while holding it; the counters
        // themselves are still coherent, so keep going.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Folds one closed span into the aggregate for `path`.
    pub fn record_span(&self, path: &str, ns: u64) {
        let mut st = self.lock();
        let stat = st.spans.entry(path.to_string()).or_insert_with(|| SpanStat {
            path: path.to_string(),
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        stat.count += 1;
        stat.total_ns += ns;
        stat.min_ns = stat.min_ns.min(ns);
        stat.max_ns = stat.max_ns.max(ns);
    }

    /// Adds `n` to counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Records `v` into histogram `name`; `bounds` applies only when the
    /// histogram is created by this call (`None` = default bounds).
    pub fn hist_observe(&self, name: &str, bounds: Option<&[f64]>, v: f64) {
        let mut st = self.lock();
        st.hists
            .entry(name.to_string())
            .or_insert_with(|| match bounds {
                Some(b) => Histogram::new(b),
                None => Histogram::new(&default_bounds()),
            })
            .observe(v);
    }

    /// Registers a pipeline stage (see [`crate::register_stage`]).
    pub fn register_stage(&self, name: &str) {
        self.lock().stages.insert(name.to_string());
    }

    /// A deterministic snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let st = self.lock();
        let spans: Vec<SpanStat> = st.spans.values().cloned().collect();
        let stages = st
            .stages
            .iter()
            .map(|stage| {
                let count = spans
                    .iter()
                    .filter(|s| s.path.split('/').any(|seg| seg == stage))
                    .map(|s| s.count)
                    .sum();
                (stage.clone(), count)
            })
            .collect();
        Snapshot {
            spans,
            counters: st.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: st.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: st.hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            stages,
        }
    }

    /// Drops all recorded spans and metrics; keeps the stage registry and
    /// the enabled flag.
    pub fn reset(&self) {
        let mut st = self.lock();
        st.spans.clear();
        st.counters.clear();
        st.gauges.clear();
        st.hists.clear();
    }
}

/// A point-in-time copy of a recorder's aggregates, ordered by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Span statistics, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Registered pipeline stages with their span counts — a stage's count
    /// is the summed count of every span whose path contains the stage name
    /// as a segment; 0 flags a stage that never ran.
    pub stages: Vec<(String, u64)>,
}

impl Snapshot {
    /// Value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Value of gauge `name`, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Entry count of the span at exactly `path` (0 when absent).
    pub fn span_count(&self, path: &str) -> u64 {
        self.spans.iter().find(|s| s.path == path).map_or(0, |s| s.count)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// The snapshot as a JSON tree — the schema of `results/OBS_*.json`:
    /// `spans` (array), `counters` / `gauges` (objects), `histograms`
    /// (objects with `bounds` / `counts` / stats), and `stages` (object,
    /// zero-valued for registered-but-never-run stages).
    pub fn to_json(&self) -> Json {
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("path", Json::str(&s.path)),
                        ("count", Json::UInt(s.count)),
                        ("total_ns", Json::UInt(s.total_ns)),
                        ("mean_ns", Json::UInt(s.mean_ns())),
                        ("min_ns", Json::UInt(s.min_ns)),
                        ("max_ns", Json::UInt(s.max_ns)),
                    ])
                })
                .collect(),
        );
        let counters =
            Json::Obj(self.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect());
        let gauges =
            Json::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect());
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj(vec![
                            ("bounds", Json::Arr(h.bounds().iter().map(|&b| Json::Num(b)).collect())),
                            ("counts", Json::Arr(h.counts().iter().map(|&c| Json::UInt(c)).collect())),
                            ("count", Json::UInt(h.count())),
                            ("sum", Json::Num(h.sum())),
                            ("mean", Json::Num(h.mean())),
                            ("min", if h.count() == 0 { Json::Null } else { Json::Num(h.min()) }),
                            ("max", if h.count() == 0 { Json::Null } else { Json::Num(h.max()) }),
                        ]),
                    )
                })
                .collect(),
        );
        let stages =
            Json::Obj(self.stages.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect());
        Json::obj(vec![
            ("spans", spans),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("stages", stages),
        ])
    }

    /// Human-readable rendering: an indented span tree followed by metric
    /// tables. This is what [`crate::sink::StderrSink`] prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("── spans ─────────────────────────────────────────────\n");
        if self.spans.is_empty() {
            out.push_str("(none)\n");
        }
        for s in &self.spans {
            let indent = "  ".repeat(s.depth());
            let label = format!("{indent}{}", s.name());
            out.push_str(&format!(
                "{label:<34} {:>8} × {:>10}  (total {})\n",
                s.count,
                fmt_ns(s.mean_ns()),
                fmt_ns(s.total_ns)
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("── stages ────────────────────────────────────────────\n");
            for (stage, count) in &self.stages {
                let marker = if *count == 0 { "  ⚠ zero spans" } else { "" };
                out.push_str(&format!("{stage:<34} {count:>8}{marker}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("── counters ──────────────────────────────────────────\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<34} {v:>12}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("── gauges ────────────────────────────────────────────\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<34} {v:>12.6}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("── histograms ────────────────────────────────────────\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "{name:<34} n={} mean={:.4} min={:.4} max={:.4}\n",
                    h.count(),
                    h.mean(),
                    if h.count() == 0 { 0.0 } else { h.min() },
                    if h.count() == 0 { 0.0 } else { h.max() },
                ));
            }
        }
        out
    }
}

/// Pretty-prints nanoseconds at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_aggregation_tracks_count_total_min_max() {
        let r = Recorder::new_enabled();
        r.record_span("a/b", 10);
        r.record_span("a/b", 30);
        let snap = r.snapshot();
        let s = &snap.spans[0];
        assert_eq!((s.count, s.total_ns, s.min_ns, s.max_ns), (2, 40, 10, 30));
        assert_eq!(s.mean_ns(), 20);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.name(), "b");
    }

    #[test]
    fn snapshot_orders_by_name() {
        let r = Recorder::new_enabled();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        r.record_span("beta", 1);
        r.record_span("alpha", 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "a");
        assert_eq!(snap.spans[0].path, "alpha");
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let r = Recorder::new_enabled();
        r.register_stage("pair");
        r.record_span("fit/pair", 5);
        r.counter_add("c", 1);
        r.gauge_set("g", 0.5);
        r.hist_observe("h", None, 1.0);
        let json = r.snapshot().to_json().pretty();
        for key in ["\"spans\"", "\"counters\"", "\"gauges\"", "\"histograms\"", "\"stages\""] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"pair\": 1"));
    }

    #[test]
    fn text_rendering_flags_zero_span_stages() {
        let r = Recorder::new_enabled();
        r.register_stage("explain");
        let text = r.snapshot().render_text();
        assert!(text.contains("zero spans"), "{text}");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
