//! Flight recorder: per-thread fixed-capacity event ring buffers.
//!
//! Everything else in `wym-obs` is an *aggregate* rendered after a run
//! completes; a process that hangs or panics mid-fit leaves those
//! aggregates unwritten and the operator blind. The flight recorder is the
//! in-process black box: every span enter/exit, counter delta, audit
//! decision, and explicit mark also lands in a small per-thread ring of
//! timestamped [`Event`]s, so the *recent* history of every thread is
//! always available for a post-mortem dump — from the panic hook, from the
//! stall watchdog, or on demand (see [`crate::flight_install`] and
//! [`crate::chrome`] for the dump writers).
//!
//! **Cost model.** With no flight installed the instrumentation points pay
//! one thread-local read plus one relaxed atomic load — the same disabled
//! fast path as the [`crate::Recorder`], pinned by the `components_bench`
//! obs group. With a flight enabled, each event is one uncontended
//! per-thread mutex lock and a bounded `VecDeque` push; when the ring is
//! full the oldest event is evicted and counted in
//! [`ThreadDump::dropped`].
//!
//! **Lanes, not threads.** `wym-par` spawns fresh scoped workers per call,
//! so rings are pooled: a thread acquires the first free *lane* and its
//! RAII thread-local handle releases the lane at thread exit. The registry
//! therefore stays bounded by peak concurrency while lane history persists
//! across worker generations (a lane's ring may interleave events from
//! successive short-lived workers — the dump labels lanes, not OS thread
//! ids, for exactly this reason).
//!
//! **Determinism contract.** Events carry wall-clock timestamps and are
//! inherently nondeterministic, so flight dumps are *never* part of
//! `obs_diff` scope and the recorder's deterministic aggregates are never
//! written to from this module. Ring bookkeeping allocations are charged
//! to the `(unattributed)` memory root so per-span memory attribution in
//! committed OBS baselines stays byte-identical whether or not a flight is
//! installed.
//!
//! **Installation** mirrors the audit log: a thread-local override
//! ([`with_flight`], captured into [`crate::ObsContext`] so `wym-par`
//! workers inherit it) over a process-wide slot ([`install_global`],
//! normally filled once by [`crate::flight_install`]).

use crate::prof;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default per-lane ring capacity (events). Overridable per install via
/// [`crate::FlightOptions::capacity`] / `WYM_FLIGHT_CAPACITY`.
pub const DEFAULT_CAPACITY: usize = 4096;

/// What one ring event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened; `value` is 0.
    Enter,
    /// A span closed; `value` is its duration in nanoseconds.
    Exit,
    /// A counter increment; `value` is the delta.
    Counter,
    /// An audit decision; `value` is the calibrated score.
    Decision,
    /// A free-form instant marker (worker panics, injections).
    Mark,
}

impl EventKind {
    /// Short stable tag used in text dumps.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Counter => "counter",
            EventKind::Decision => "decision",
            EventKind::Mark => "mark",
        }
    }
}

/// One timestamped flight event. `ts_ns` is nanoseconds since the owning
/// [`Flight`]'s creation instant (one epoch per flight, so lanes merge on a
/// common axis).
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the flight epoch.
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Span, counter, decision, or marker name.
    pub name: String,
    /// Kind-dependent payload (see [`EventKind`]).
    pub value: f64,
}

/// A span currently open on a lane (tracked for stall detection and for
/// dumps: an evicted `Enter` event must not hide an in-flight span).
#[derive(Debug)]
struct OpenSpan {
    name: String,
    ts_ns: u64,
    since: Instant,
}

/// A span that was open when a dump was captured.
#[derive(Debug, Clone)]
pub struct OpenSpanDump {
    /// Span name.
    pub name: String,
    /// Enter time, nanoseconds since the flight epoch.
    pub ts_ns: u64,
    /// How long the span had been open at capture, in milliseconds.
    pub open_ms: u64,
}

/// An innermost open span that exceeded the watchdog threshold.
#[derive(Debug, Clone)]
pub struct StallInfo {
    /// Lane id.
    pub tid: u64,
    /// Lane label (thread name at acquisition).
    pub label: String,
    /// Stalled span name.
    pub name: String,
    /// How long it has been open, in milliseconds.
    pub open_ms: u64,
    /// Enter time, nanoseconds since the flight epoch (identifies the span
    /// *instance*, so the watchdog warns once per stall, not once per poll).
    pub enter_ts_ns: u64,
}

#[derive(Debug, Default)]
struct RingState {
    events: VecDeque<Event>,
    open: Vec<OpenSpan>,
    dropped: u64,
    in_use: bool,
    label: String,
}

/// One lane's ring buffer. Obtained via the thread-local cache in
/// `span_enter` / `counter_event`; exposed so [`crate::SpanGuard`] can
/// hold a reference for its exit event.
#[derive(Debug)]
pub struct ThreadRing {
    tid: u64,
    epoch: Instant,
    capacity: usize,
    state: Mutex<RingState>,
}

impl ThreadRing {
    fn new(tid: u64, epoch: Instant, capacity: usize, label: String) -> ThreadRing {
        ThreadRing {
            tid,
            epoch,
            capacity,
            state: Mutex::new(RingState { in_use: true, label, ..RingState::default() }),
        }
    }

    /// Lane id (stable for the flight's lifetime; reused across workers).
    pub fn tid(&self) -> u64 {
        self.tid
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Poisoning-tolerant lock: a panicking thread leaves at worst a
    /// complete-or-absent event, and the panic hook reads rings *after* a
    /// panic, so poison must not make the black box unreadable.
    fn lock(&self) -> MutexGuard<'_, RingState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push_locked(state: &mut RingState, capacity: usize, ev: Event) {
        if state.events.len() >= capacity.max(1) {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(ev);
    }

    pub(crate) fn enter(&self, name: &str) {
        let _unattr = prof::CellScope::install(None);
        let ts_ns = self.now_ns();
        let since = Instant::now();
        let mut state = self.lock();
        Self::push_locked(
            &mut state,
            self.capacity,
            Event { ts_ns, kind: EventKind::Enter, name: name.to_string(), value: 0.0 },
        );
        state.open.push(OpenSpan { name: name.to_string(), ts_ns, since });
    }

    pub(crate) fn exit_span(&self) {
        let _unattr = prof::CellScope::install(None);
        let ts_ns = self.now_ns();
        let mut state = self.lock();
        let Some(open) = state.open.pop() else { return };
        let dur_ns = open.since.elapsed().as_nanos() as u64;
        Self::push_locked(
            &mut state,
            self.capacity,
            Event { ts_ns, kind: EventKind::Exit, name: open.name, value: dur_ns as f64 },
        );
    }

    pub(crate) fn event(&self, kind: EventKind, name: &str, value: f64) {
        let _unattr = prof::CellScope::install(None);
        let ts_ns = self.now_ns();
        let mut state = self.lock();
        Self::push_locked(
            &mut state,
            self.capacity,
            Event { ts_ns, kind, name: name.to_string(), value },
        );
    }

    fn release(&self) {
        self.lock().in_use = false;
    }

    fn snapshot(&self) -> ThreadDump {
        let _unattr = prof::CellScope::install(None);
        let state = self.lock();
        ThreadDump {
            tid: self.tid,
            label: state.label.clone(),
            dropped: state.dropped,
            events: state.events.iter().cloned().collect(),
            open: state
                .open
                .iter()
                .map(|o| OpenSpanDump {
                    name: o.name.clone(),
                    ts_ns: o.ts_ns,
                    open_ms: o.since.elapsed().as_millis() as u64,
                })
                .collect(),
        }
    }
}

/// One lane's contribution to a [`FlightDump`].
#[derive(Debug, Clone)]
pub struct ThreadDump {
    /// Lane id.
    pub tid: u64,
    /// Lane label (thread name at acquisition).
    pub label: String,
    /// Events evicted from the ring since the flight was created.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Spans open at capture, outermost first.
    pub open: Vec<OpenSpanDump>,
}

/// A point-in-time capture of every lane's recent history — what the panic
/// hook, the stall watchdog, and `--chrome-trace` serialize (see
/// [`crate::chrome`]).
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken (`panic: …`, `stall: …`, `full-run export`).
    pub reason: String,
    /// Capture time, nanoseconds since the flight epoch.
    pub captured_ts_ns: u64,
    /// Capture time, milliseconds since the Unix epoch (wall clock; the
    /// one deliberately nondeterministic field family in `wym-obs`).
    pub captured_unix_ms: u64,
    /// Per-lane ring capacity the flight was created with.
    pub capacity: usize,
    /// Per-lane captures, lane id order.
    pub threads: Vec<ThreadDump>,
}

/// The flight recorder: a pool of per-thread event rings sharing one time
/// epoch and one enabled flag.
#[derive(Debug)]
pub struct Flight {
    enabled: AtomicBool,
    capacity: usize,
    epoch: Instant,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl Flight {
    /// A disabled flight with per-lane ring capacity `capacity`.
    pub fn new(capacity: usize) -> Flight {
        Flight {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// An enabled flight (tests and [`crate::flight_install`]).
    pub fn new_enabled(capacity: usize) -> Flight {
        let f = Flight::new(capacity);
        f.set_enabled(true);
        f
    }

    /// Turns recording on or off. Disabled flights record nothing and cost
    /// the instrumentation points one relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the flight is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Per-lane ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock_rings(&self) -> MutexGuard<'_, Vec<Arc<ThreadRing>>> {
        self.rings.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of lanes ever created — bounded by peak thread concurrency,
    /// not by total threads spawned (lanes are pooled and reused).
    pub fn lanes(&self) -> usize {
        self.lock_rings().len()
    }

    fn acquire_ring(&self) -> Arc<ThreadRing> {
        let _unattr = prof::CellScope::install(None);
        let label = std::thread::current().name().unwrap_or("worker").to_string();
        let mut rings = self.lock_rings();
        for ring in rings.iter() {
            let mut state = ring.lock();
            if !state.in_use {
                state.in_use = true;
                state.label = label;
                return Arc::clone(ring);
            }
        }
        let ring =
            Arc::new(ThreadRing::new(rings.len() as u64, self.epoch, self.capacity, label));
        rings.push(Arc::clone(&ring));
        ring
    }

    /// Captures every lane's recent history.
    pub fn dump(&self, reason: &str) -> FlightDump {
        let _unattr = prof::CellScope::install(None);
        let captured_ts_ns = self.epoch.elapsed().as_nanos() as u64;
        let captured_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let threads = self.lock_rings().iter().map(|r| r.snapshot()).collect();
        FlightDump {
            reason: reason.to_string(),
            captured_ts_ns,
            captured_unix_ms,
            capacity: self.capacity,
            threads,
        }
    }

    /// The innermost open span of every lane whose age exceeds
    /// `threshold_ms` — the watchdog's "what is this thread actually doing
    /// right now" question. Outer spans legitimately stay open for a whole
    /// fit; a stalled *leaf* means no progress.
    pub fn stalled_spans(&self, threshold_ms: u64) -> Vec<StallInfo> {
        let _unattr = prof::CellScope::install(None);
        let mut out = Vec::new();
        for ring in self.lock_rings().iter() {
            let state = ring.lock();
            if let Some(leaf) = state.open.last() {
                let open_ms = leaf.since.elapsed().as_millis() as u64;
                if open_ms >= threshold_ms {
                    out.push(StallInfo {
                        tid: ring.tid,
                        label: state.label.clone(),
                        name: leaf.name.clone(),
                        open_ms,
                        enter_ts_ns: leaf.ts_ns,
                    });
                }
            }
        }
        out
    }
}

/// Whether a global flight is installed — the one relaxed load the
/// disabled fast path pays (avoids locking the global slot per event).
static ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Arc<Flight>>> = Mutex::new(None);

thread_local! {
    /// Per-thread flight override (tests, propagated worker contexts).
    static LOCAL: RefCell<Option<Arc<Flight>>> = const { RefCell::new(None) };
    /// This thread's acquired lane, released (pooled) on thread exit.
    static RING: RefCell<Option<RingHandle>> = const { RefCell::new(None) };
}

struct RingHandle {
    flight: Arc<Flight>,
    ring: Arc<ThreadRing>,
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        self.ring.release();
    }
}

fn global_slot() -> Option<Arc<Flight>> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs `flight` as the process-wide flight recorder (returns the
/// previous one). Normally called once, by [`crate::flight_install`].
pub fn install_global(flight: Arc<Flight>) -> Option<Arc<Flight>> {
    let prev = GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).replace(flight);
    ARMED.store(true, Ordering::Relaxed);
    prev
}

/// The process-wide flight, if one is installed.
pub fn global_flight() -> Option<Arc<Flight>> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    global_slot()
}

/// The flight events on this thread land in, if one is installed and
/// enabled: the thread-local override, else the process-wide slot. An
/// installed-but-disabled override shadows the global (same semantics as
/// the recorder override).
pub fn active() -> Option<Arc<Flight>> {
    if let Some(f) = LOCAL.with(|l| l.borrow().clone()) {
        return f.is_enabled().then_some(f);
    }
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    global_slot().filter(|f| f.is_enabled())
}

/// Runs `f` with `flight` as this thread's flight recorder (restored
/// afterwards, even on panic). The test-isolation twin of
/// [`crate::with_recorder`].
pub fn with_flight<R>(flight: Arc<Flight>, f: impl FnOnce() -> R) -> R {
    let _restore = install_local(Some(flight));
    f()
}

/// Captures this thread's override for [`crate::ObsContext`].
pub(crate) fn capture_local() -> Option<Arc<Flight>> {
    LOCAL.with(|l| l.borrow().clone())
}

/// RAII-installs a thread-local override (for [`crate::in_context`]).
pub(crate) fn install_local(flight: Option<Arc<Flight>>) -> LocalRestore {
    LocalRestore(LOCAL.with(|l| std::mem::replace(&mut *l.borrow_mut(), flight)))
}

pub(crate) struct LocalRestore(Option<Arc<Flight>>);

impl Drop for LocalRestore {
    fn drop(&mut self) {
        let prev = self.0.take();
        LOCAL.with(|l| *l.borrow_mut() = prev);
    }
}

/// This thread's lane in `flight`, acquired (or revalidated) through the
/// thread-local handle so repeated events skip the flight-wide registry
/// lock.
fn thread_ring(flight: &Arc<Flight>) -> Arc<ThreadRing> {
    RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(h) = slot.as_ref() {
            if Arc::ptr_eq(&h.flight, flight) {
                return Arc::clone(&h.ring);
            }
        }
        let _unattr = prof::CellScope::install(None);
        let ring = flight.acquire_ring();
        *slot = Some(RingHandle { flight: Arc::clone(flight), ring: Arc::clone(&ring) });
        ring
    })
}

/// Records a span enter on this thread's lane (called by [`crate::span`]
/// *before* the recorder gate, so untraced runs still feed the black box).
/// Returns the lane for the guard's exit event. Fault injections armed for
/// `name` fire here, after the ring lock is released.
pub(crate) fn span_enter(name: &str) -> Option<Arc<ThreadRing>> {
    let flight = active()?;
    let ring = thread_ring(&flight);
    ring.enter(name);
    maybe_inject(name);
    Some(ring)
}

/// Records a counter delta on this thread's lane.
pub(crate) fn counter_event(name: &str, n: u64) {
    if let Some(flight) = active() {
        thread_ring(&flight).event(EventKind::Counter, name, n as f64);
    }
}

/// Records an audit-decision summary on this thread's lane (called by
/// [`crate::AuditLog::emit`] for sampled, unsuppressed decisions).
pub(crate) fn decision_event(kind: &str, verdict: bool, score: f32) {
    if let Some(flight) = active() {
        let name =
            format!("decision.{kind}.{}", if verdict { "match" } else { "nonmatch" });
        thread_ring(&flight).event(EventKind::Decision, &name, score as f64);
    }
}

/// Records a free-form instant marker on this thread's lane (`wym-par`
/// stamps worker panics with this so the dump shows *which* item blew up).
pub fn mark(name: &str) {
    if let Some(flight) = active() {
        thread_ring(&flight).event(EventKind::Mark, name, 0.0);
    }
}

// ── Fault injection (smoke-gate hooks) ──────────────────────────────────

/// A deterministic fault armed by the hidden `--inject-panic` /
/// `--inject-stall` experiment flags so CI can exercise the panic-hook and
/// watchdog dump paths on demand.
#[derive(Debug, Clone)]
pub enum Injection {
    /// Panic when a span with this name is entered.
    Panic(String),
    /// Sleep this many milliseconds when a span with this name is entered
    /// (every time it is entered).
    Stall(String, u64),
}

static INJECT_ARMED: AtomicBool = AtomicBool::new(false);
static INJECTION: Mutex<Option<Injection>> = Mutex::new(None);

/// Arms a fault. The trigger fires at span enter, after the ring lock is
/// released (the dump writers must never find the lock held by a sleeping
/// or unwinding thread).
pub fn set_injection(inj: Injection) {
    *INJECTION.lock().unwrap_or_else(|e| e.into_inner()) = Some(inj);
    INJECT_ARMED.store(true, Ordering::Relaxed);
}

/// Disarms any armed fault (tests).
pub fn clear_injection() {
    INJECT_ARMED.store(false, Ordering::Relaxed);
    *INJECTION.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Whether a fault is armed. `append_bench_history` consults this so
/// fault-injection runs never pollute the timing ledger.
pub fn injection_armed() -> bool {
    INJECT_ARMED.load(Ordering::Relaxed)
}

fn maybe_inject(name: &str) {
    if !INJECT_ARMED.load(Ordering::Relaxed) {
        return;
    }
    let inj = INJECTION.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match inj {
        Some(Injection::Panic(span)) if span == name => {
            mark(&format!("inject.panic {name}"));
            panic!("flight: injected panic in span \"{name}\"");
        }
        Some(Injection::Stall(span, ms)) if span == name => {
            mark(&format!("inject.stall {name} {ms}ms"));
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_per_lane_with_durations() {
        let flight = Arc::new(Flight::new_enabled(64));
        with_flight(Arc::clone(&flight), || {
            let ring = span_enter("outer").unwrap();
            counter_event("c", 3);
            ring.exit_span();
        });
        let dump = flight.dump("test");
        assert_eq!(dump.threads.len(), 1);
        let kinds: Vec<EventKind> = dump.threads[0].events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::Enter, EventKind::Counter, EventKind::Exit]);
        let exit = &dump.threads[0].events[2];
        assert_eq!(exit.name, "outer");
        assert!(exit.value >= 0.0, "exit value is a duration in ns");
        assert!(dump.threads[0].open.is_empty());
    }

    #[test]
    fn disabled_flight_records_nothing() {
        let flight = Arc::new(Flight::new(64)); // disabled
        with_flight(Arc::clone(&flight), || {
            assert!(span_enter("ghost").is_none());
            counter_event("ghost", 1);
            mark("ghost");
        });
        let dump = flight.dump("test");
        assert!(dump.threads.is_empty(), "no lane should even be acquired");
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_dropped() {
        let flight = Arc::new(Flight::new_enabled(4));
        with_flight(Arc::clone(&flight), || {
            for i in 0..10 {
                counter_event(&format!("c{i}"), 1);
            }
        });
        let t = &flight.dump("test").threads[0];
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.events[0].name, "c6", "oldest events evicted first");
    }

    #[test]
    fn open_spans_survive_eviction_and_report_age() {
        let flight = Arc::new(Flight::new_enabled(2));
        with_flight(Arc::clone(&flight), || {
            let _ring = span_enter("long_running").unwrap();
            for i in 0..8 {
                counter_event(&format!("c{i}"), 1);
            }
            std::thread::sleep(std::time::Duration::from_millis(15));
            let dump = flight.dump("test");
            let t = &dump.threads[0];
            assert_eq!(t.open.len(), 1, "enter evicted, open span still tracked");
            assert_eq!(t.open[0].name, "long_running");
            assert!(t.open[0].open_ms >= 10);
        });
    }

    #[test]
    fn stalled_spans_report_the_innermost_open_span() {
        let flight = Arc::new(Flight::new_enabled(64));
        with_flight(Arc::clone(&flight), || {
            let _outer = span_enter("outer").unwrap();
            let _inner = span_enter("inner_leaf").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(20));
            let stalls = flight.stalled_spans(10);
            assert_eq!(stalls.len(), 1);
            assert_eq!(stalls[0].name, "inner_leaf", "leaf, not outer");
            assert!(stalls[0].open_ms >= 10);
            assert!(flight.stalled_spans(60_000).is_empty());
        });
    }

    #[test]
    fn lanes_are_pooled_across_thread_generations() {
        let flight = Arc::new(Flight::new_enabled(64));
        for _ in 0..4 {
            let f = Arc::clone(&flight);
            std::thread::spawn(move || {
                with_flight(f, || {
                    let ring = span_enter("worker_span").unwrap();
                    ring.exit_span();
                });
            })
            .join()
            .unwrap();
        }
        assert_eq!(flight.lanes(), 1, "sequential threads reuse one lane");
        let t = &flight.dump("test").threads[0];
        assert_eq!(t.events.len(), 8, "lane history persists across workers");
    }

    #[test]
    fn injected_panic_fires_at_enter_and_leaves_span_open() {
        let flight = Arc::new(Flight::new_enabled(64));
        set_injection(Injection::Panic("ring_test_inject_target".to_string()));
        assert!(injection_armed());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_flight(Arc::clone(&flight), || {
                let _ring = span_enter("ring_test_inject_target");
            });
        }));
        clear_injection();
        assert!(result.is_err(), "injection must panic");
        assert!(!injection_armed());
        let t = &flight.dump("test").threads[0];
        assert_eq!(t.open.len(), 1, "panic at enter leaves the span open");
        assert_eq!(t.open[0].name, "ring_test_inject_target");
        assert!(t.events.iter().any(|e| {
            e.kind == EventKind::Mark && e.name.contains("inject.panic")
        }));
    }

    #[test]
    fn local_override_shadows_even_when_disabled() {
        let global_like = Arc::new(Flight::new_enabled(64));
        let disabled = Arc::new(Flight::new(64));
        with_flight(global_like, || {
            with_flight(Arc::clone(&disabled), || {
                assert!(active().is_none(), "disabled override must shadow");
            });
            assert!(active().is_some());
        });
    }
}
