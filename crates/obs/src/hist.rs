//! Fixed-bucket histograms.
//!
//! A histogram with boundaries `b_0 < b_1 < … < b_{n-1}` has `n + 1`
//! buckets. The bucket contract, which tests assert, is **lower-inclusive,
//! upper-exclusive**:
//!
//! * bucket `0` counts values `v < b_0`;
//! * bucket `i` (for `1 ≤ i < n`) counts values `b_{i-1} ≤ v < b_i`;
//! * the overflow bucket `n` counts values `v ≥ b_{n-1}` (NaN lands here
//!   too — it compares false against every boundary).
//!
//! A value exactly on a boundary therefore always lands in the bucket
//! *above* it.

/// The default bucket boundaries: a log-ish ladder wide enough for the
/// quantities WYM records (ratios, counts per record, losses, seconds).
pub fn default_bounds() -> Vec<f64> {
    vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 1000.0]
}

/// Power-of-two boundaries `1, 2, 4, …, 2^(n-1)` — the natural ladder for
/// size-like counts spanning orders of magnitude (posting-list lengths,
/// bucket occupancies, candidate counts per record).
pub fn pow2_bounds(n: u32) -> Vec<f64> {
    (0..n).map(|e| (1u64 << e) as f64).collect()
}

/// A fixed-bucket histogram with running sum / min / max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be strictly increasing).
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index `v` falls into under the module-level contract.
    pub fn bucket_index(bounds: &[f64], v: f64) -> usize {
        bounds.iter().position(|&b| v < b).unwrap_or(bounds.len())
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = Self::bucket_index(&self.bounds, v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Rebuilds a histogram from exported parts (the `obs_diff` read path).
    /// The total count is derived from the bucket counts, so a rebuilt
    /// histogram always satisfies the per-bucket/total consistency
    /// invariant. `min`/`max` use the empty sentinels (+∞/−∞) when absent.
    ///
    /// # Errors
    /// Rejects a `counts` slice whose length is not `bounds.len() + 1`.
    pub fn from_parts(
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
        min: f64,
        max: f64,
    ) -> Result<Histogram, String> {
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram needs {} bucket counts for {} bounds, got {}",
                bounds.len() + 1,
                bounds.len(),
                counts.len()
            ));
        }
        let mut h = Histogram::new(bounds);
        h.counts = counts.to_vec();
        h.count = counts.iter().sum();
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }

    /// Folds `other` into `self`: per-bucket counts, total count, and sum
    /// add; min/max take the extrema. This is how per-thread or per-run
    /// histograms aggregate without losing bucket resolution.
    ///
    /// # Panics
    /// Panics when the two histograms have different bucket boundaries —
    /// merging across bucketings would silently misbin.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket boundaries"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation inside the bucket that holds the target rank — the
    /// standard fixed-bucket estimator, so the answer is exact only when
    /// the true quantile sits on a bucket edge. The underflow bucket
    /// interpolates up from the observed `min` and the overflow bucket
    /// toward the observed `max`; when those extrema are unavailable
    /// (a histogram rebuilt via [`Histogram::from_parts`] with the empty
    /// sentinels) the adjacent boundary stands in. Returns `None` when the
    /// histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo_cum = cum as f64;
            cum += c;
            if cum as f64 >= target {
                let first = self.bounds[0];
                let last = *self.bounds.last().expect("bounds are never empty");
                let lower = if i == 0 {
                    if self.min.is_finite() { self.min.min(first) } else { first }
                } else {
                    self.bounds[i - 1]
                };
                let upper = if i == self.bounds.len() {
                    if self.max.is_finite() { self.max.max(last) } else { last }
                } else {
                    self.bounds[i]
                };
                let frac = ((target - lo_cum) / c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
        }
        // Unreachable while count equals the bucket-count sum; be lenient
        // toward hand-built parts instead of panicking.
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_the_upper_bucket() {
        // Bounds [1, 2, 4] → buckets (-∞,1) [1,2) [2,4) [4,∞).
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0: below the first bound
        h.observe(1.0); // bucket 1: lower bound is inclusive
        h.observe(1.999); // bucket 1: upper bound is exclusive
        h.observe(2.0); // bucket 2
        h.observe(4.0); // overflow: v ≥ last bound
        h.observe(100.0); // overflow
        assert_eq!(h.counts(), &[1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn bucket_index_contract() {
        let b = [1.0, 2.0, 4.0];
        assert_eq!(Histogram::bucket_index(&b, 0.99), 0);
        assert_eq!(Histogram::bucket_index(&b, 1.0), 1);
        assert_eq!(Histogram::bucket_index(&b, 2.0), 2);
        assert_eq!(Histogram::bucket_index(&b, 3.99), 2);
        assert_eq!(Histogram::bucket_index(&b, 4.0), 3);
        assert_eq!(Histogram::bucket_index(&b, f64::NAN), 3, "NaN goes to overflow");
    }

    #[test]
    fn stats_track_sum_min_max() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(2.0);
        h.observe(6.0);
        assert_eq!(h.sum(), 8.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 6.0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn default_bounds_are_valid() {
        let _ = Histogram::new(&default_bounds());
    }

    #[test]
    fn overflow_bucket_catches_everything_at_or_above_the_last_bound() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(10.0); // exactly the last bound
        h.observe(1e300);
        h.observe(f64::INFINITY);
        assert_eq!(h.counts(), &[0, 0, 3]);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), f64::INFINITY);
    }

    #[test]
    fn merge_keeps_sum_count_and_bucket_invariants() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        a.observe(0.5);
        a.observe(1.5);
        let mut b = Histogram::new(&[1.0, 2.0]);
        b.observe(1.5);
        b.observe(3.0);
        b.observe(0.1);
        a.merge(&b);
        // Total count equals the sum of bucket counts (the consistency
        // invariant `from_parts` derives from) and both sides' totals.
        assert_eq!(a.count(), 5);
        assert_eq!(a.counts().iter().sum::<u64>(), a.count());
        assert_eq!(a.counts(), &[2, 2, 1]);
        assert!((a.sum() - (0.5 + 1.5 + 1.5 + 3.0 + 0.1)).abs() < 1e-12);
        assert_eq!(a.min(), 0.1);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn merging_into_empty_is_identity() {
        let mut empty = Histogram::new(&[1.0, 2.0]);
        let mut other = Histogram::new(&[1.0, 2.0]);
        other.observe(1.5);
        empty.merge(&other);
        assert_eq!(empty, other);
    }

    #[test]
    #[should_panic(expected = "different bucket boundaries")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..4 {
            h.observe(1.5);
        }
        for _ in 0..4 {
            h.observe(3.0);
        }
        // Rank 4 of 8 sits exactly on the [1,2)/[2,4) seam.
        assert_eq!(h.quantile(0.5), Some(2.0));
        // Rank 7.2 is 80% into the [2,4) bucket → 2 + 0.8·2.
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 3.6).abs() < 1e-12, "p90 {p90}");
        // q=0 clamps to the lower edge of the first occupied bucket.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
        // The underflow bucket interpolates up from the observed min.
        let mut u = Histogram::new(&[1.0]);
        u.observe(0.5);
        assert_eq!(u.quantile(0.0), Some(0.5));
        // Overflow bucket interpolates toward the observed max.
        let mut o = Histogram::new(&[1.0]);
        o.observe(5.0);
        o.observe(9.0);
        let p = o.quantile(1.0).unwrap();
        assert!((p - 9.0).abs() < 1e-12, "overflow upper edge is max, got {p}");
    }

    #[test]
    fn from_parts_round_trips_and_rejects_bad_count_arity() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let back =
            Histogram::from_parts(h.bounds(), h.counts(), h.sum(), h.min(), h.max()).unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_parts(&[1.0, 2.0], &[1, 2], 0.0, 0.0, 0.0).is_err());
    }
}
