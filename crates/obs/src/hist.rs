//! Fixed-bucket histograms.
//!
//! A histogram with boundaries `b_0 < b_1 < … < b_{n-1}` has `n + 1`
//! buckets. The bucket contract, which tests assert, is **lower-inclusive,
//! upper-exclusive**:
//!
//! * bucket `0` counts values `v < b_0`;
//! * bucket `i` (for `1 ≤ i < n`) counts values `b_{i-1} ≤ v < b_i`;
//! * the overflow bucket `n` counts values `v ≥ b_{n-1}` (NaN lands here
//!   too — it compares false against every boundary).
//!
//! A value exactly on a boundary therefore always lands in the bucket
//! *above* it.

/// The default bucket boundaries: a log-ish ladder wide enough for the
/// quantities WYM records (ratios, counts per record, losses, seconds).
pub fn default_bounds() -> Vec<f64> {
    vec![0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 1000.0]
}

/// A fixed-bucket histogram with running sum / min / max.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be strictly increasing).
    ///
    /// # Panics
    /// Panics when `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing: {bounds:?}"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index `v` falls into under the module-level contract.
    pub fn bucket_index(bounds: &[f64], v: f64) -> usize {
        bounds.iter().position(|&b| v < b).unwrap_or(bounds.len())
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = Self::bucket_index(&self.bounds, v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, overflow last).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_the_upper_bucket() {
        // Bounds [1, 2, 4] → buckets (-∞,1) [1,2) [2,4) [4,∞).
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0: below the first bound
        h.observe(1.0); // bucket 1: lower bound is inclusive
        h.observe(1.999); // bucket 1: upper bound is exclusive
        h.observe(2.0); // bucket 2
        h.observe(4.0); // overflow: v ≥ last bound
        h.observe(100.0); // overflow
        assert_eq!(h.counts(), &[1, 2, 1, 2]);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn bucket_index_contract() {
        let b = [1.0, 2.0, 4.0];
        assert_eq!(Histogram::bucket_index(&b, 0.99), 0);
        assert_eq!(Histogram::bucket_index(&b, 1.0), 1);
        assert_eq!(Histogram::bucket_index(&b, 2.0), 2);
        assert_eq!(Histogram::bucket_index(&b, 3.99), 2);
        assert_eq!(Histogram::bucket_index(&b, 4.0), 3);
        assert_eq!(Histogram::bucket_index(&b, f64::NAN), 3, "NaN goes to overflow");
    }

    #[test]
    fn stats_track_sum_min_max() {
        let mut h = Histogram::new(&[10.0]);
        h.observe(2.0);
        h.observe(6.0);
        assert_eq!(h.sum(), 8.0);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min(), 2.0);
        assert_eq!(h.max(), 6.0);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn default_bounds_are_valid() {
        let _ = Histogram::new(&default_bounds());
    }
}
