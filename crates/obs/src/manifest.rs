//! Run provenance: the manifest header every version-2 export carries.
//!
//! Two observability snapshots are only comparable if they came from
//! comparable runs. The manifest records what "comparable" means for WYM:
//! the schema version of the file itself, the git commit the binary was
//! built from, a hash of the effective configuration, a fingerprint of the
//! dataset selection, which kernel implementation dispatch resolved to,
//! the worker-thread setting, and the seed. `obs_diff` prints a warning
//! when any of these differ between the two files it compares (and refuses
//! files from a future schema); `schema_version` is how readers tolerate
//! old files — a version-1 `OBS_*.json` simply has no manifest, and every
//! reader treats its provenance fields as unknown.

use crate::json::Json;

/// The schema version this crate writes. History:
/// 1 — bare snapshot (spans/counters/gauges/histograms/stages), no header;
/// 2 — manifest header, optional per-span `mem` and top-level `memory`.
pub const SCHEMA_VERSION: u32 = 2;

/// Placeholder for provenance fields the producing binary did not know.
pub const UNKNOWN: &str = "unknown";

/// Provenance header of one exported run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Export schema version (see [`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Producing binary (e.g. `timing`, `wym`).
    pub tool: String,
    /// Git commit of the working tree, best-effort (`unknown` outside a
    /// repository); `-dirty` is appended when uncommitted changes exist.
    pub git_sha: String,
    /// Kernel implementation runtime dispatch resolved to (`avx2_fma`,
    /// `scalar`, …).
    pub kernel: String,
    /// Configured worker threads (0 = all cores).
    pub threads: u64,
    /// Global seed of the run.
    pub seed: u64,
    /// FNV-1a hash of the effective configuration, hex-encoded.
    pub config_hash: String,
    /// Fingerprint of the dataset selection (names, caps, seed), hex.
    pub dataset_fingerprint: String,
}

impl Manifest {
    /// A manifest for `tool` at the current schema version, with the git
    /// sha detected from the working directory and every other provenance
    /// field `unknown`/zero until the builder setters fill it in.
    pub fn new(tool: &str) -> Manifest {
        Manifest {
            schema_version: SCHEMA_VERSION,
            tool: tool.to_string(),
            git_sha: detect_git_sha().unwrap_or_else(|| UNKNOWN.to_string()),
            kernel: UNKNOWN.to_string(),
            threads: 0,
            seed: 0,
            config_hash: UNKNOWN.to_string(),
            dataset_fingerprint: UNKNOWN.to_string(),
        }
    }

    /// Sets the dispatched kernel name.
    pub fn with_kernel(mut self, kernel: &str) -> Manifest {
        self.kernel = kernel.to_string();
        self
    }

    /// Sets the configured worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Manifest {
        self.threads = threads as u64;
        self
    }

    /// Sets the run seed.
    pub fn with_seed(mut self, seed: u64) -> Manifest {
        self.seed = seed;
        self
    }

    /// Sets the configuration hash from raw config bytes (serialized
    /// config, CLI args — whatever fully determines behaviour).
    pub fn with_config_bytes(mut self, bytes: &[u8]) -> Manifest {
        self.config_hash = format!("{:016x}", fnv1a(bytes));
        self
    }

    /// Sets the dataset fingerprint from raw identity bytes (names, sizes,
    /// caps, seed).
    pub fn with_dataset_bytes(mut self, bytes: &[u8]) -> Manifest {
        self.dataset_fingerprint = format!("{:016x}", fnv1a(bytes));
        self
    }

    /// The manifest as the JSON object stored under the `manifest` key.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::UInt(self.schema_version as u64)),
            ("tool", Json::str(&self.tool)),
            ("git_sha", Json::str(&self.git_sha)),
            ("kernel", Json::str(&self.kernel)),
            ("threads", Json::UInt(self.threads)),
            ("seed", Json::UInt(self.seed)),
            ("config_hash", Json::str(&self.config_hash)),
            ("dataset_fingerprint", Json::str(&self.dataset_fingerprint)),
        ])
    }

    /// Reads the manifest out of a whole exported file. Returns `None` for
    /// version-1 files (no `manifest` key) — the caller decides whether
    /// that is acceptable. Unknown fields are ignored; missing fields fall
    /// back to `unknown`/zero so partially written headers still load.
    pub fn from_file_json(file: &Json) -> Option<Manifest> {
        let Json::Obj(sections) = file else { return None };
        let (_, m) = sections.iter().find(|(k, _)| k == "manifest")?;
        let Json::Obj(fields) = m else { return None };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let s = |name: &str| match get(name) {
            Some(Json::Str(s)) => s.clone(),
            _ => UNKNOWN.to_string(),
        };
        let u = |name: &str| match get(name) {
            Some(Json::UInt(n)) => *n,
            Some(Json::Int(n)) if *n >= 0 => *n as u64,
            _ => 0,
        };
        Some(Manifest {
            schema_version: u("schema_version") as u32,
            tool: s("tool"),
            git_sha: s("git_sha"),
            kernel: s("kernel"),
            threads: u("threads"),
            seed: u("seed"),
            config_hash: s("config_hash"),
            dataset_fingerprint: s("dataset_fingerprint"),
        })
    }

    /// The schema version of a whole exported file: the manifest's value,
    /// or 1 for pre-manifest files.
    pub fn file_schema_version(file: &Json) -> u32 {
        Manifest::from_file_json(file).map_or(1, |m| m.schema_version)
    }
}

/// 64-bit FNV-1a — the workspace's convention for cheap stable hashes
/// (deterministic across runs and platforms, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Best-effort git HEAD of the working directory: walks up from the
/// current directory to the first `.git/HEAD`, following one level of
/// `ref:` indirection (covering normal checkouts; packed refs fall back to
/// reading `.git/packed-refs`). No subprocess, no git dependency.
pub fn detect_git_sha() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(text) = std::fs::read_to_string(&head) {
            let text = text.trim();
            if let Some(refname) = text.strip_prefix("ref: ") {
                let ref_path = dir.join(".git").join(refname);
                if let Ok(sha) = std::fs::read_to_string(&ref_path) {
                    return Some(sha.trim().to_string());
                }
                // Packed ref: look the name up in .git/packed-refs.
                let packed = std::fs::read_to_string(dir.join(".git").join("packed-refs")).ok()?;
                return packed.lines().find_map(|line| {
                    let (sha, name) = line.split_once(' ')?;
                    (name == refname).then(|| sha.to_string())
                });
            }
            return Some(text.to_string()); // detached HEAD
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn round_trips_through_file_json() {
        let m = Manifest::new("timing")
            .with_kernel("avx2_fma")
            .with_threads(4)
            .with_seed(7)
            .with_config_bytes(b"cfg")
            .with_dataset_bytes(b"S-FZ:40");
        let file = Json::obj(vec![("manifest", m.to_json()), ("spans", Json::Arr(vec![]))]);
        let text = file.pretty();
        let parsed = json::parse(&text).unwrap();
        let back = Manifest::from_file_json(&parsed).expect("manifest present");
        assert_eq!(back, m);
        assert_eq!(Manifest::file_schema_version(&parsed), SCHEMA_VERSION);
    }

    #[test]
    fn version1_files_have_no_manifest() {
        let v1 = json::parse(r#"{"spans": [], "counters": {}}"#).unwrap();
        assert!(Manifest::from_file_json(&v1).is_none());
        assert_eq!(Manifest::file_schema_version(&v1), 1);
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"wym"), fnv1a(b"wym"));
    }

    #[test]
    fn detect_git_sha_in_this_repo() {
        // The workspace is a git checkout; the sha must parse as hex.
        if let Some(sha) = detect_git_sha() {
            assert!(sha.len() >= 7, "{sha}");
            assert!(sha.chars().all(|c| c.is_ascii_hexdigit()), "{sha}");
        }
    }

    #[test]
    fn config_hash_is_hex_of_fnv() {
        let m = Manifest::new("t").with_config_bytes(b"x");
        assert_eq!(m.config_hash, format!("{:016x}", fnv1a(b"x")));
        assert_eq!(m.dataset_fingerprint, UNKNOWN);
    }
}
