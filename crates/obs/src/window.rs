//! Ring-buffer time-windowed metrics.
//!
//! A run-scoped recorder reports lifetime totals; a long-lived process
//! needs *recent* rates and quantiles — requests in the last N windows, not
//! since boot. [`Windowed`] keeps a fixed-capacity ring of
//! [`WindowFrame`]s, each holding its own counters and histograms. The
//! current frame absorbs observations; [`Windowed::advance`] seals it and
//! opens the next, evicting the oldest frame once the ring is full.
//!
//! Rotation is driven by **explicit advance calls, never by wall clock** —
//! a caller rotates every K records (the CLI), every batch (a server
//! micro-batcher), or on a timer thread if it accepts nondeterminism. With
//! record-count rotation, frame contents are bit-identical across kernels
//! and thread counts, which is what lets `obs_diff` gate on them.
//!
//! Frames are identified by their *epoch* (the number of advances when the
//! frame was opened), so two runs can be aligned frame-by-frame even after
//! the ring has wrapped and absolute positions differ from logical ages.

use crate::hist::{default_bounds, Histogram};
use crate::json::Json;
use crate::recorder::{as_f64, as_u64};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// One window's worth of metrics. Counters and histograms are keyed by
/// name in `BTreeMap`s so every serialization is deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowFrame {
    /// Number of [`Windowed::advance`] calls when this frame was opened
    /// (the first frame has epoch 0).
    pub epoch: u64,
    /// Per-window counter increments.
    pub counters: BTreeMap<String, u64>,
    /// Per-window histograms.
    pub hists: BTreeMap<String, Histogram>,
}

impl WindowFrame {
    fn new(epoch: u64) -> WindowFrame {
        WindowFrame { epoch, ..WindowFrame::default() }
    }

    /// Whether the frame recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }
}

/// A ring of [`WindowFrame`]s: the newest frame is current and mutable,
/// older frames are sealed, and frames beyond `capacity` are evicted.
#[derive(Debug, Clone, PartialEq)]
pub struct Windowed {
    capacity: usize,
    advances: u64,
    /// Front = oldest retained, back = current.
    frames: VecDeque<WindowFrame>,
}

impl Windowed {
    /// An empty ring retaining at most `capacity` frames (including the
    /// current one).
    ///
    /// # Panics
    /// Panics when `capacity` is 0 — a ring that cannot hold even the
    /// current frame has no meaning.
    pub fn new(capacity: usize) -> Windowed {
        assert!(capacity > 0, "windowed metrics need capacity >= 1");
        let mut frames = VecDeque::with_capacity(capacity);
        frames.push_back(WindowFrame::new(0));
        Windowed { capacity, advances: 0, frames }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of [`Windowed::advance`] calls so far. The current
    /// frame's epoch equals this value.
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// The retained frames, oldest first; the last one is current.
    pub fn frames(&self) -> impl Iterator<Item = &WindowFrame> {
        self.frames.iter()
    }

    fn current(&mut self) -> &mut WindowFrame {
        self.frames.back_mut().expect("ring always holds the current frame")
    }

    /// Adds `n` to counter `name` in the current frame.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.current().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Records `v` into histogram `name` in the current frame; `bounds`
    /// applies only on first use within the frame (`None` = defaults).
    pub fn hist_observe(&mut self, name: &str, bounds: Option<&[f64]>, v: f64) {
        self.current()
            .hists
            .entry(name.to_string())
            .or_insert_with(|| match bounds {
                Some(b) => Histogram::new(b),
                None => Histogram::new(&default_bounds()),
            })
            .observe(v);
    }

    /// Seals the current frame and opens the next; evicts the oldest frame
    /// when the ring is full. An untouched frame rotates through as an
    /// explicit empty frame — "nothing happened in that window" is data.
    pub fn advance(&mut self) {
        self.advances += 1;
        self.frames.push_back(WindowFrame::new(self.advances));
        while self.frames.len() > self.capacity {
            self.frames.pop_front();
        }
    }

    /// Merges the newest `last_n` retained frames (capped at what the ring
    /// still holds): counters sum, histograms merge per bucket. Returns the
    /// merged frame plus the number of frames actually covered.
    ///
    /// # Panics
    /// Panics when the same histogram name was created with different
    /// bucket boundaries in different frames (the [`Histogram::merge`]
    /// contract — merging across bucketings would silently misbin).
    pub fn merged(&self, last_n: usize) -> (WindowFrame, usize) {
        let covered = last_n.min(self.frames.len());
        if covered == 0 {
            return (WindowFrame::new(self.advances), 0);
        }
        let mut out = WindowFrame::new(self.frames[self.frames.len() - covered].epoch);
        for frame in self.frames.iter().skip(self.frames.len() - covered) {
            for (k, v) in &frame.counters {
                *out.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, h) in &frame.hists {
                out.hists
                    .entry(k.clone())
                    .and_modify(|acc| acc.merge(h))
                    .or_insert_with(|| h.clone());
            }
        }
        (out, covered)
    }

    /// Mean per-window increments of counter `name` over the newest
    /// `last_n` frames (0.0 when the counter never fired there).
    pub fn rate(&self, name: &str, last_n: usize) -> f64 {
        let (merged, covered) = self.merged(last_n);
        if covered == 0 {
            return 0.0;
        }
        merged.counters.get(name).copied().unwrap_or(0) as f64 / covered as f64
    }

    /// The `q`-quantile of histogram `name` over the newest `last_n`
    /// frames; `None` when the histogram is absent or empty there.
    pub fn quantile(&self, name: &str, q: f64, last_n: usize) -> Option<f64> {
        let (merged, _) = self.merged(last_n);
        merged.hists.get(name).and_then(|h| h.quantile(q))
    }

    /// The ring as the JSON object stored under a snapshot's `windows` key.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("capacity", Json::UInt(self.capacity as u64)),
            ("advances", Json::UInt(self.advances)),
            (
                "frames",
                Json::Arr(self.frames.iter().map(frame_to_json).collect()),
            ),
        ])
    }

    /// Parses a ring back out of its [`Windowed::to_json`] form.
    pub fn from_json(v: &Json) -> Result<Windowed, String> {
        let Json::Obj(fields) = v else {
            return Err("windows must be an object".to_string());
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let capacity = get("capacity")
            .and_then(as_u64)
            .ok_or("windows missing capacity")? as usize;
        if capacity == 0 {
            return Err("windows capacity must be >= 1".to_string());
        }
        let advances = get("advances").and_then(as_u64).ok_or("windows missing advances")?;
        let mut frames = VecDeque::with_capacity(capacity);
        if let Some(Json::Arr(arr)) = get("frames") {
            for f in arr {
                frames.push_back(frame_from_json(f)?);
            }
        }
        if frames.is_empty() {
            frames.push_back(WindowFrame::new(advances));
        }
        if frames.len() > capacity {
            return Err(format!(
                "windows hold {} frames but declare capacity {capacity}",
                frames.len()
            ));
        }
        Ok(Windowed { capacity, advances, frames })
    }
}

fn frame_to_json(f: &WindowFrame) -> Json {
    Json::obj(vec![
        ("epoch", Json::UInt(f.epoch)),
        (
            "counters",
            Json::Obj(f.counters.iter().map(|(k, v)| (k.clone(), Json::UInt(*v))).collect()),
        ),
        (
            "histograms",
            Json::Obj(
                f.hists
                    .iter()
                    .map(|(k, h)| {
                        (
                            k.clone(),
                            Json::obj(vec![
                                (
                                    "bounds",
                                    Json::Arr(h.bounds().iter().map(|&b| Json::Num(b)).collect()),
                                ),
                                (
                                    "counts",
                                    Json::Arr(h.counts().iter().map(|&c| Json::UInt(c)).collect()),
                                ),
                                ("sum", Json::Num(h.sum())),
                                (
                                    "min",
                                    if h.count() == 0 { Json::Null } else { Json::Num(h.min()) },
                                ),
                                (
                                    "max",
                                    if h.count() == 0 { Json::Null } else { Json::Num(h.max()) },
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

fn frame_from_json(v: &Json) -> Result<WindowFrame, String> {
    let Json::Obj(fields) = v else {
        return Err("window frame must be an object".to_string());
    };
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let mut frame = WindowFrame::new(get("epoch").and_then(as_u64).ok_or("frame missing epoch")?);
    if let Some(Json::Obj(counters)) = get("counters") {
        for (k, v) in counters {
            frame
                .counters
                .insert(k.clone(), as_u64(v).ok_or("bad window counter value")?);
        }
    }
    if let Some(Json::Obj(hists)) = get("histograms") {
        for (k, v) in hists {
            let Json::Obj(hf) = v else {
                return Err("window histogram must be an object".to_string());
            };
            let hget = |name: &str| hf.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            let Some(Json::Arr(bounds)) = hget("bounds") else {
                return Err("window histogram missing bounds".to_string());
            };
            let Some(Json::Arr(counts)) = hget("counts") else {
                return Err("window histogram missing counts".to_string());
            };
            let bounds: Vec<f64> =
                bounds.iter().map(|b| as_f64(b).ok_or("bad bound")).collect::<Result<_, _>>()?;
            let counts: Vec<u64> = counts
                .iter()
                .map(|c| as_u64(c).ok_or("bad bucket count"))
                .collect::<Result<_, _>>()?;
            let h = Histogram::from_parts(
                &bounds,
                &counts,
                hget("sum").and_then(as_f64).unwrap_or(0.0),
                hget("min").and_then(as_f64).unwrap_or(f64::INFINITY),
                hget("max").and_then(as_f64).unwrap_or(f64::NEG_INFINITY),
            )?;
            frame.hists.insert(k.clone(), h);
        }
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_current_frame() {
        let mut w = Windowed::new(4);
        w.counter_add("req", 2);
        w.advance();
        w.counter_add("req", 5);
        let frames: Vec<&WindowFrame> = w.frames().collect();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].counters.get("req"), Some(&2));
        assert_eq!(frames[1].counters.get("req"), Some(&5));
        assert_eq!(frames[0].epoch, 0);
        assert_eq!(frames[1].epoch, 1);
    }

    #[test]
    fn wrap_around_evicts_oldest_and_keeps_epochs() {
        let mut w = Windowed::new(3);
        for i in 0..7u64 {
            w.counter_add("tick", i + 1);
            w.advance();
        }
        // 7 advances on capacity 3: current frame is epoch 7, the two
        // sealed survivors are epochs 5 and 6.
        let epochs: Vec<u64> = w.frames().map(|f| f.epoch).collect();
        assert_eq!(epochs, vec![5, 6, 7]);
        assert_eq!(w.advances(), 7);
        let (merged, covered) = w.merged(10);
        assert_eq!(covered, 3);
        assert_eq!(merged.counters.get("tick"), Some(&(6 + 7)));
    }

    #[test]
    fn empty_windows_rotate_through_explicitly() {
        let mut w = Windowed::new(4);
        w.counter_add("req", 1);
        w.advance(); // frame 1: nothing
        w.advance(); // frame 2: nothing
        w.counter_add("req", 1);
        let empties = w.frames().filter(|f| f.is_empty()).count();
        assert_eq!(empties, 1, "the untouched middle frame must survive as data");
        assert_eq!(w.rate("req", 4), 2.0 / 3.0);
        assert_eq!(w.rate("req", 1), 1.0);
        assert_eq!(w.rate("absent", 4), 0.0);
    }

    #[test]
    fn merged_histograms_cover_overflow_buckets() {
        let mut w = Windowed::new(3);
        w.hist_observe("lat", Some(&[1.0, 10.0]), 0.5);
        w.advance();
        w.hist_observe("lat", Some(&[1.0, 10.0]), 1e9); // overflow bucket
        w.hist_observe("lat", Some(&[1.0, 10.0]), f64::NAN); // overflow too
        let (merged, _) = w.merged(3);
        let h = merged.hists.get("lat").unwrap();
        assert_eq!(h.counts(), &[1, 0, 2]);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_over_last_n_windows() {
        let mut w = Windowed::new(8);
        for v in [1.5, 1.5, 1.5, 1.5] {
            w.hist_observe("lat", Some(&[1.0, 2.0, 4.0]), v);
        }
        w.advance();
        for v in [3.0, 3.0, 3.0, 3.0] {
            w.hist_observe("lat", Some(&[1.0, 2.0, 4.0]), v);
        }
        // Over both windows the upper half sits in [2,4).
        let p90 = w.quantile("lat", 0.9, 8).unwrap();
        assert!((2.0..4.0).contains(&p90), "p90 {p90}");
        // Over only the newest window everything is in [2,4).
        let p50 = w.quantile("lat", 0.5, 1).unwrap();
        assert!((2.0..4.0).contains(&p50), "p50 {p50}");
        assert_eq!(w.quantile("absent", 0.5, 8), None);
    }

    #[test]
    #[should_panic(expected = "different bucket boundaries")]
    fn merge_rejects_rebucketed_histograms() {
        let mut w = Windowed::new(3);
        w.hist_observe("h", Some(&[1.0]), 0.5);
        w.advance();
        w.hist_observe("h", Some(&[2.0]), 0.5);
        let _ = w.merged(3);
    }

    #[test]
    fn json_round_trip_is_faithful() {
        let mut w = Windowed::new(3);
        w.counter_add("req", 3);
        w.hist_observe("lat", Some(&[1.0, 2.0]), 1.5);
        w.advance();
        w.advance(); // leave an empty sealed frame in the ring
        w.counter_add("req", 1);
        let json = w.to_json();
        let back = Windowed::from_json(&json).expect("round trip");
        assert_eq!(back, w);
        // And via text, the way obs_diff reads baselines back.
        let reparsed = crate::json::parse(&json.render()).unwrap();
        assert_eq!(Windowed::from_json(&reparsed).unwrap(), w);
    }

    #[test]
    fn from_json_rejects_inconsistent_rings() {
        assert!(Windowed::from_json(&Json::obj(vec![
            ("capacity", Json::UInt(0)),
            ("advances", Json::UInt(0)),
        ]))
        .is_err());
        let mut w = Windowed::new(2);
        w.advance();
        let mut json = w.to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "capacity" {
                    *v = Json::UInt(1); // fewer than the frames present
                }
            }
        }
        assert!(Windowed::from_json(&json).is_err());
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_is_rejected() {
        let _ = Windowed::new(0);
    }
}
