//! End-to-end memory-attribution tests with [`wym_obs::TrackingAlloc`]
//! actually installed as the global allocator — the unit tests inside the
//! crate drive the hook functions directly; this binary exercises the real
//! `#[global_allocator]` path.
//!
//! Tests here share one process, one allocator, and the process-wide
//! profiling flag, and the harness runs them on parallel threads. So:
//! profiling is switched on and never off, process-global numbers (the
//! `(unattributed)` root, live/peak bytes) are only ever asserted as
//! *lower-bound deltas*, and exact-ish assertions are reserved for span
//! cells, which are installed per thread.

use std::hint::black_box;
use std::sync::Arc;
use wym_obs::{MemStat, Recorder};

wym_obs::install_tracking_alloc!();

fn enable() {
    wym_obs::prof::set_enabled(true);
}

/// Allocates and immediately frees `n` heap bytes the optimizer can't elide.
fn churn(n: usize) {
    let v: Vec<u8> = black_box(vec![0xA5u8; n]);
    drop(black_box(v));
}

#[test]
fn out_of_span_allocations_charge_the_unattributed_root() {
    enable();
    let before = wym_obs::prof::unattributed();
    churn(100_000);
    let after = wym_obs::prof::unattributed();
    assert!(
        after.alloc_bytes >= before.alloc_bytes + 100_000,
        "unattributed bytes {} -> {}",
        before.alloc_bytes,
        after.alloc_bytes
    );
    assert!(after.allocs > before.allocs);
    assert!(after.free_bytes >= before.free_bytes + 100_000);
}

#[test]
fn span_allocations_are_self_costs_not_parent_costs() {
    enable();
    let rec = Arc::new(Recorder::new_enabled());
    wym_obs::with_recorder(Arc::clone(&rec), || {
        let _outer = wym_obs::span("outer");
        churn(10_000);
        {
            let _inner = wym_obs::span("inner");
            churn(1_000_000);
        }
    });
    let snap = rec.snapshot();
    let mem = |path: &str| -> MemStat {
        snap.spans
            .iter()
            .find(|s| s.path == path)
            .and_then(|s| s.mem)
            .unwrap_or_else(|| panic!("span {path} has no memory attribution: {snap:?}"))
    };
    let outer = mem("outer");
    let inner = mem("outer/inner");
    assert!(inner.alloc_bytes >= 1_000_000, "inner charged {}B", inner.alloc_bytes);
    assert!(outer.alloc_bytes >= 10_000, "outer charged {}B", outer.alloc_bytes);
    // The child's megabyte must NOT appear in the parent: per-span numbers
    // are self costs. The parent's own traffic (10kB plus span overhead)
    // stays far below the child's 1MB.
    assert!(
        outer.alloc_bytes < 1_000_000,
        "outer {}B includes the child's allocation",
        outer.alloc_bytes
    );
    assert!(inner.peak_net_bytes >= 1_000_000);
}

#[test]
fn worker_allocations_land_under_the_capturing_span() {
    enable();
    let rec = Arc::new(Recorder::new_enabled());
    wym_obs::with_recorder(Arc::clone(&rec), || {
        let _root = wym_obs::span("fit");
        let ctx = wym_obs::capture();
        std::thread::scope(|s| {
            s.spawn(|| {
                wym_obs::in_context(&ctx, || {
                    // No span of its own: the worker's traffic charges the
                    // captured cell, i.e. `fit`'s self cost.
                    churn(500_000);
                });
            })
            .join()
            .unwrap();
        });
    });
    let snap = rec.snapshot();
    let fit = snap.spans.iter().find(|s| s.path == "fit").unwrap();
    let mem = fit.mem.expect("fit has memory attribution");
    assert!(mem.alloc_bytes >= 500_000, "worker bytes missing: {}B", mem.alloc_bytes);
}

#[test]
fn live_and_peak_track_the_global_heap() {
    enable();
    let peak_before = wym_obs::prof::peak_live_bytes();
    let held: Vec<u8> = black_box(vec![1u8; 4_000_000]);
    let peak_during = wym_obs::prof::peak_live_bytes();
    assert!(
        peak_during >= peak_before.max(4_000_000),
        "peak {peak_during} after holding 4MB (was {peak_before})"
    );
    drop(black_box(held));
    // Peak is a high-water mark: dropping must not lower it.
    assert!(wym_obs::prof::peak_live_bytes() >= peak_during);
}

#[test]
fn snapshot_and_flame_export_carry_the_attribution() {
    enable();
    let rec = Arc::new(Recorder::new_enabled());
    let snap = wym_obs::with_recorder(Arc::clone(&rec), || {
        {
            let _s = wym_obs::span("work");
            churn(200_000);
        }
        wym_obs::snapshot()
    });
    // The free-function snapshot attaches the process memory section.
    let memory = snap.memory.expect("memory section present while profiling");
    assert!(memory.peak_live_bytes > 0);
    // The alloc-weighted flamegraph contains the span with its recorded
    // bytes and the synthetic unattributed root.
    let folded = wym_obs::flame::folded(&snap, wym_obs::flame::FlameWeight::AllocBytes);
    let work_line = folded
        .lines()
        .find(|l| l.starts_with("work "))
        .unwrap_or_else(|| panic!("no work stack in:\n{folded}"));
    let weight: u64 = work_line.rsplit(' ').next().unwrap().parse().unwrap();
    let recorded = snap.spans.iter().find(|s| s.path == "work").unwrap().mem.unwrap();
    assert_eq!(weight, recorded.alloc_bytes, "folded weight mirrors the span tree");
    assert!(weight >= 200_000);
    assert!(folded.contains("(unattributed) "), "{folded}");
}
