//! Integration tests for the flight recorder through the public API:
//! span/counter/audit instrumentation feeding per-thread rings, context
//! propagation across threads, and the Chrome trace round trip.

use std::sync::Arc;
use wym_obs::ring::{self, EventKind, Flight};
use wym_obs::{AuditLog, AuditOptions, Recorder};

#[test]
fn spans_and_counters_feed_the_flight_even_untraced() {
    // Recorder disabled — the aggregate side records nothing, but the
    // black box still sees every event.
    let rec = Arc::new(Recorder::new());
    let flight = Arc::new(Flight::new_enabled(256));
    wym_obs::with_recorder(Arc::clone(&rec), || {
        ring::with_flight(Arc::clone(&flight), || {
            let _outer = wym_obs::span("untraced_outer");
            wym_obs::counter_add("untraced.counter", 2);
        });
    });
    assert!(rec.snapshot().spans.is_empty(), "recorder stays empty when disabled");
    let dump = flight.dump("test");
    let t = &dump.threads[0];
    assert!(t.events.iter().any(|e| e.kind == EventKind::Enter && e.name == "untraced_outer"));
    assert!(t
        .events
        .iter()
        .any(|e| e.kind == EventKind::Counter && e.name == "untraced.counter" && e.value == 2.0));
    assert!(t.events.iter().any(|e| e.kind == EventKind::Exit && e.name == "untraced_outer"));
}

#[test]
fn obs_context_carries_the_flight_into_worker_threads() {
    let flight = Arc::new(Flight::new_enabled(256));
    ring::with_flight(Arc::clone(&flight), || {
        let ctx = wym_obs::capture();
        std::thread::scope(|s| {
            s.spawn(|| {
                wym_obs::in_context(&ctx, || {
                    let _w = wym_obs::span("ctx_worker_span");
                });
            })
            .join()
            .unwrap();
        });
    });
    let dump = flight.dump("test");
    let with_span: Vec<_> = dump
        .threads
        .iter()
        .filter(|t| t.events.iter().any(|e| e.name == "ctx_worker_span"))
        .collect();
    assert_eq!(with_span.len(), 1, "worker events land in the propagated flight");
}

#[test]
fn audit_decisions_mirror_into_the_decision_tail() {
    let flight = Arc::new(Flight::new_enabled(256));
    let log = Arc::new(AuditLog::new(AuditOptions { sample_every: 2, ..AuditOptions::default() }));
    ring::with_flight(Arc::clone(&flight), || {
        wym_obs::audit::with_audit(Arc::clone(&log), || {
            for seq in 0..4u64 {
                let _pin = wym_obs::audit::scope_seq(seq);
                let l = wym_obs::audit::active().unwrap();
                l.emit("classify", seq, seq % 2 == 0, 0.5 + seq as f32 / 10.0, 4, 2, Vec::new(), None);
            }
        });
    });
    // sample_every=2 keeps seq 0 and 2; the flight mirrors exactly those.
    assert_eq!(log.len(), 2);
    let dump = flight.dump("test");
    let decisions: Vec<&str> = dump.threads[0]
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Decision)
        .map(|e| e.name.as_str())
        .collect();
    assert_eq!(decisions, vec!["decision.classify.match", "decision.classify.match"]);
}

#[test]
fn full_trace_round_trip_via_files_and_summarize() {
    let flight = Arc::new(Flight::new_enabled(256));
    ring::with_flight(Arc::clone(&flight), || {
        let _fit = wym_obs::span("it_fit");
        {
            let _inner = wym_obs::span("it_score");
            wym_obs::counter_add("it.pairs", 12);
        }
    });
    let dump = flight.dump("test: integration");
    let dir = std::env::temp_dir().join(format!("wym_flight_it_{}", std::process::id()));
    let (_txt, json_path) =
        wym_obs::chrome::write_dump_files(dir.to_str().unwrap(), "it", "roundtrip", &dump)
            .expect("dump files written");
    let summary =
        wym_obs::chrome::summarize_file(std::path::Path::new(&json_path)).expect("parseable");
    for needle in ["it_fit", "it_score", "reason:    test: integration"] {
        assert!(summary.contains(needle), "missing {needle:?} in:\n{summary}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disabled_path_is_inert_without_any_install() {
    // No global flight, no override: instrumentation must not create state.
    let before = ring::global_flight().is_none();
    let _s = wym_obs::span("no_flight_span");
    wym_obs::counter_add("no_flight.counter", 1);
    ring::mark("no_flight.mark");
    if before {
        assert!(ring::global_flight().is_none(), "instrumentation must not install a flight");
    }
}
