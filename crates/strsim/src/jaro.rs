//! Jaro and Jaro–Winkler similarity.

/// Jaro similarity in `[0, 1]`.
///
/// Matches characters within the standard window of
/// `max(|a|,|b|)/2 - 1`, then counts transpositions among matches.
pub fn jaro(a: &str, b: &str) -> f32 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> =
        b.iter().zip(&b_used).filter(|(_, &used)| used).map(|(&c, _)| c).collect();
    let transpositions =
        matches_a.iter().zip(&matches_b).filter(|(x, y)| x != y).count() as f32 / 2.0;
    let m = m as f32;
    (m / a.len() as f32 + m / b.len() as f32 + (m - transpositions) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by a shared prefix of up to 4
/// characters with the standard scaling factor `p = 0.1`.
///
/// ```
/// use wym_strsim::jaro_winkler;
/// assert!(jaro_winkler("exchange", "exchng") > 0.9);
/// assert_eq!(jaro_winkler("sony", "sony"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f32 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f32;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn identical_strings() {
        assert_eq!(jaro("martha", "martha"), 1.0);
        assert_eq!(jaro_winkler("martha", "martha"), 1.0);
    }

    #[test]
    fn classic_martha_marhta() {
        // Canonical textbook value: jaro = 0.944..., jw = 0.961...
        assert!(close(jaro("martha", "marhta"), 0.9444));
        assert!(close(jaro_winkler("martha", "marhta"), 0.9611));
    }

    #[test]
    fn classic_dixon_dicksonx() {
        assert!(close(jaro("dixon", "dicksonx"), 0.7667));
        assert!(close(jaro_winkler("dixon", "dicksonx"), 0.8133));
    }

    #[test]
    fn disjoint_strings_zero() {
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("kitten", "sitting"), ("39400416", "39400415"), ("exch", "exchange")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn prefix_boost_ordering() {
        // Same Jaro base, shared prefix must score at least as high.
        let no_prefix = jaro_winkler("xabcd", "yabcd");
        let with_prefix = jaro_winkler("abcdx", "abcdy");
        assert!(with_prefix > no_prefix);
    }

    #[test]
    fn bounded_unit_interval() {
        for (a, b) in [("a", "ab"), ("abcdefgh", "abcdefg"), ("sony", "nikon")] {
            let v = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&v), "{a} vs {b}: {v}");
        }
    }

    #[test]
    fn unicode_safe() {
        assert!(jaro("café", "cafe") > 0.8);
        assert_eq!(jaro("ü", "ü"), 1.0);
    }
}
