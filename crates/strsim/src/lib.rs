//! String-similarity substrate for the WYM entity-matching system.
//!
//! The paper's ablation study (Table 4) replaces the embedding-based decision
//! unit generator with one driven by the Jaro–Winkler distance, "a well known
//! measure, performing well on many benchmark problems". This crate provides
//! that measure plus the companions used by the baseline matchers and the
//! dataset generator: Levenshtein, Jaccard / Dice over token sets, a numeric
//! similarity, and the common-prefix test used for product codes.

pub mod edit;
pub mod jaro;
pub mod sets;

pub use edit::{levenshtein, levenshtein_sim};
pub use jaro::{jaro, jaro_winkler};
pub use sets::{dice_tokens, jaccard_tokens, overlap_tokens};

/// Similarity of two numeric strings as the relative closeness of their
/// parsed values, in `[0, 1]`; falls back to Jaro–Winkler when either side
/// does not parse as a number.
///
/// The running example of the paper pairs prices like `42166` and `22575`:
/// numeric tokens need a similarity notion that is not purely orthographic.
pub fn numeric_sim(a: &str, b: &str) -> f32 {
    match (parse_number(a), parse_number(b)) {
        (Some(x), Some(y)) => {
            let denom = x.abs().max(y.abs());
            if denom < f64::EPSILON {
                1.0
            } else {
                (1.0 - ((x - y).abs() / denom)).max(0.0) as f32
            }
        }
        _ => jaro_winkler(a, b),
    }
}

/// Parses a token as a number, tolerating a currency sign and thousands commas.
pub fn parse_number(s: &str) -> Option<f64> {
    let cleaned: String =
        s.chars().filter(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    if cleaned.is_empty() || cleaned.chars().all(|c| !c.is_ascii_digit()) {
        return None;
    }
    // Require that the original token is mostly numeric, so "dslra200w"
    // is NOT treated as the number 200.
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    if digits * 2 < s.chars().count() {
        return None;
    }
    cleaned.parse().ok()
}

/// Heuristic from the paper's error analysis (§5.1.1): a token "looks like a
/// product code" when it is alphanumeric, at least 5 characters, and mixes
/// digits with letters or is all digits with length ≥ 5.
pub fn looks_like_code(s: &str) -> bool {
    if s.chars().count() < 5 || !s.chars().all(|c| c.is_ascii_alphanumeric()) {
        return false;
    }
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    let letters = s.chars().filter(|c| c.is_ascii_alphabetic()).count();
    (digits >= 2 && letters >= 1) || (letters == 0 && digits >= 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_sim_close_values() {
        assert!(numeric_sim("100", "100") > 0.999);
        assert!(numeric_sim("100", "90") > 0.85);
        assert!(numeric_sim("100", "1") < 0.1);
    }

    #[test]
    fn numeric_sim_currency_and_commas() {
        assert!(numeric_sim("$1,000", "1000") > 0.999);
    }

    #[test]
    fn numeric_sim_falls_back_to_jw_for_words() {
        let s = numeric_sim("camera", "camera");
        assert!((s - 1.0).abs() < 1e-6);
    }

    #[test]
    fn parse_number_rejects_mostly_alpha() {
        assert_eq!(parse_number("dslra200w"), None);
        assert!(parse_number("37.63").is_some());
        assert!(parse_number("-5").is_some());
        assert_eq!(parse_number("abc"), None);
    }

    #[test]
    fn code_detection() {
        assert!(looks_like_code("39400416"));
        assert!(looks_like_code("dslra200w"));
        assert!(looks_like_code("5811a"));
        assert!(!looks_like_code("sony"));
        assert!(!looks_like_code("led"));
        assert!(!looks_like_code("4k"));
        assert!(!looks_like_code("ab-123456")); // punctuation
    }
}
