//! Levenshtein edit distance and its normalized similarity.

/// Levenshtein distance with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity: `1 - dist / max(|a|, |b|)`, in `[0, 1]`.
pub fn levenshtein_sim(a: &str, b: &str) -> f32 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f32 / max as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kitten_sitting_is_three() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn empty_and_identical() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn single_edit_kinds() {
        assert_eq!(levenshtein("cat", "cut"), 1); // substitution
        assert_eq!(levenshtein("cat", "cats"), 1); // insertion
        assert_eq!(levenshtein("cats", "cat"), 1); // deletion
    }

    #[test]
    fn symmetry_and_triangle() {
        let words = ["exch", "srvr", "server", "exchange"];
        for a in words {
            for b in words {
                assert_eq!(levenshtein(a, b), levenshtein(b, a));
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }

    #[test]
    fn normalized_similarity_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let v = levenshtein_sim("kitten", "sitting");
        assert!((v - (1.0 - 3.0 / 7.0)).abs() < 1e-6);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein_sim("éé", "éé"), 1.0);
    }
}
