//! Set similarities over token multisets, used by the baseline matchers
//! (DeepMatcher+/CorDEL proxies summarize attributes via token overlap).

use std::collections::HashSet;

fn to_set<'a>(tokens: &'a [&'a str]) -> HashSet<&'a str> {
    tokens.iter().copied().collect()
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`; 1.0 when both are empty.
pub fn jaccard_tokens(a: &[&str], b: &[&str]) -> f32 {
    let sa = to_set(a);
    let sb = to_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    let union = sa.union(&sb).count() as f32;
    inter / union
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`; 1.0 when both are empty.
pub fn dice_tokens(a: &[&str], b: &[&str]) -> f32 {
    let sa = to_set(a);
    let sb = to_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    2.0 * inter / (sa.len() + sb.len()) as f32
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`; 1.0 when either is empty.
pub fn overlap_tokens(a: &[&str], b: &[&str]) -> f32 {
    let sa = to_set(a);
    let sb = to_set(b);
    let min = sa.len().min(sb.len());
    if min == 0 {
        return 1.0;
    }
    sa.intersection(&sb).count() as f32 / min as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basic() {
        assert_eq!(jaccard_tokens(&["a", "b"], &["b", "c"]), 1.0 / 3.0);
        assert_eq!(jaccard_tokens(&[], &[]), 1.0);
        assert_eq!(jaccard_tokens(&["a"], &[]), 0.0);
        assert_eq!(jaccard_tokens(&["a", "b"], &["a", "b"]), 1.0);
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        assert_eq!(jaccard_tokens(&["a", "a", "b"], &["a", "b"]), 1.0);
    }

    #[test]
    fn dice_basic() {
        assert_eq!(dice_tokens(&["a", "b"], &["b", "c"]), 0.5);
        assert_eq!(dice_tokens(&[], &[]), 1.0);
    }

    #[test]
    fn overlap_subset_is_one() {
        assert_eq!(overlap_tokens(&["a"], &["a", "b", "c"]), 1.0);
    }

    #[test]
    fn all_symmetric() {
        let a = ["digital", "camera", "lens"];
        let b = ["digital", "camera", "case"];
        assert_eq!(jaccard_tokens(&a, &b), jaccard_tokens(&b, &a));
        assert_eq!(dice_tokens(&a, &b), dice_tokens(&b, &a));
        assert_eq!(overlap_tokens(&a, &b), overlap_tokens(&b, &a));
    }

    #[test]
    fn ordering_dice_geq_jaccard() {
        let a = ["x", "y", "z"];
        let b = ["x", "w"];
        assert!(dice_tokens(&a, &b) >= jaccard_tokens(&a, &b));
    }
}
